package sasm

import (
	"strings"
	"testing"

	"straight/internal/isa/straight"
	"straight/internal/program"
)

func mustAssemble(t *testing.T, src string) *program.Image {
	t.Helper()
	im, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return im
}

func TestAssembleBasicInstructions(t *testing.T) {
	im := mustAssemble(t, `
main:
    NOP
    ADD [1], [2]
    ADDi [0], 42
    SLTiu [3], -1
    ST [4], [7]
    ST [4], [7], 4
    LD [1], 8
    RMOV [10]
    SPADD -16
    LUI 0x123456
    JR [5]
    SYS exit, [1]
`)
	want := []straight.Inst{
		{Op: straight.NOP},
		{Op: straight.ADD, Src1: 1, Src2: 2},
		{Op: straight.ADDI, Src1: 0, Imm: 42},
		{Op: straight.SLTIU, Src1: 3, Imm: -1},
		{Op: straight.SW, Src1: 4, Src2: 7},
		{Op: straight.SW, Src1: 4, Src2: 7, Imm: 4},
		{Op: straight.LW, Src1: 1, Imm: 8},
		{Op: straight.RMOV, Src1: 10},
		{Op: straight.SPADD, Imm: -16},
		{Op: straight.LUI, Imm: 0x123456},
		{Op: straight.JR, Src1: 5},
		{Op: straight.SYS, Src1: 1, Imm: straight.SysExit},
	}
	if len(im.Text) != len(want) {
		t.Fatalf("text length %d, want %d", len(im.Text), len(want))
	}
	for i, w := range im.Text {
		got, err := straight.Decode(w)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("inst %d: got %v want %v", i, got, want[i])
		}
	}
	if im.Entry != im.TextBase {
		t.Errorf("entry %#x, want text base %#x", im.Entry, im.TextBase)
	}
}

func TestBranchTargetsArePCRelative(t *testing.T) {
	im := mustAssemble(t, `
main:
    NOP
back:
    BEZ [1], back
    BNZ [1], fwd
    J back
fwd:
    JAL main
`)
	insts := decodeAll(t, im)
	if insts[1].Imm != 0 {
		t.Errorf("BEZ back: imm %d, want 0 (branch to itself)", insts[1].Imm)
	}
	if insts[2].Imm != 2 {
		t.Errorf("BNZ fwd: imm %d, want 2", insts[2].Imm)
	}
	if insts[3].Imm != -2 {
		t.Errorf("J back: imm %d, want -2", insts[3].Imm)
	}
	if insts[4].Imm != -4 {
		t.Errorf("JAL main: imm %d, want -4", insts[4].Imm)
	}
}

func TestDataSectionAndSymbols(t *testing.T) {
	im := mustAssemble(t, `
    .data
vals:
    .word 1, 2, 0x30
msg:
    .asciz "hi"
    .align 4
arr:
    .space 8
ptr:
    .word msg
    .text
main:
    LUI hi(vals)
    ORi [1], lo(vals)
    LD [1], 0
    ADDi [0], 0
    SYS exit, [1]
`)
	vals, ok := im.Symbol("vals")
	if !ok || vals != im.DataBase {
		t.Fatalf("vals symbol: %#x,%v", vals, ok)
	}
	msg, _ := im.Symbol("msg")
	if msg != im.DataBase+12 {
		t.Errorf("msg at %#x, want %#x", msg, im.DataBase+12)
	}
	arr, _ := im.Symbol("arr")
	if arr%4 != 0 {
		t.Errorf("arr not aligned: %#x", arr)
	}
	if im.Data[0] != 1 || im.Data[4] != 2 || im.Data[8] != 0x30 {
		t.Errorf("word data wrong: % x", im.Data[:12])
	}
	if string(im.Data[12:15]) != "hi\x00" {
		t.Errorf("asciz data wrong: %q", im.Data[12:15])
	}
	// ptr should hold the address of msg, little-endian.
	ptr, _ := im.Symbol("ptr")
	off := ptr - im.DataBase
	got := uint32(im.Data[off]) | uint32(im.Data[off+1])<<8 | uint32(im.Data[off+2])<<16 | uint32(im.Data[off+3])<<24
	if got != msg {
		t.Errorf("ptr fixup: %#x want %#x", got, msg)
	}
	// LUI hi(vals) then ORi lo(vals) must reconstruct the address.
	insts := decodeAll(t, im)
	reconstructed := straight.LUIValue(insts[0].Imm) | uint32(insts[1].Imm)
	if reconstructed != vals {
		t.Errorf("hi/lo reconstruction: %#x want %#x", reconstructed, vals)
	}
}

func TestEntryDirective(t *testing.T) {
	im := mustAssemble(t, `
    .entry start
pre:
    NOP
start:
    NOP
`)
	want, _ := im.Symbol("start")
	if im.Entry != want {
		t.Errorf("entry %#x want %#x", im.Entry, want)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "FOO [1], [2]", "unknown mnemonic"},
		{"bad distance", "ADD [9999], [1]", "out of range"},
		{"missing operand", "ADD [1]", "expects"},
		{"undefined label", "J nowhere", "undefined symbol"},
		{"duplicate label", "a:\nNOP\na:\nNOP", "duplicate label"},
		{"data in text", ".word 1", "outside .data"},
		{"insn in data", ".data\nNOP", "in data section"},
		{"imm overflow", "ADDi [1], 100000", "out of 14-bit range"},
		{"store offset overflow", "ST [1], [2], 100", "out of 4-bit range"},
		{"bad sys", "SYS frobnicate", "bad SYS function"},
		{"bad entry", ".entry nowhere\nNOP", "undefined .entry"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("expected error containing %q", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestCommentsAndSeparators(t *testing.T) {
	im := mustAssemble(t, `
main:
    ADD [4] [3]      # paper-style space separation
    ADDi [1], 1      ; semicolon comment
    SLT [2],[4]      // C-style comment
`)
	insts := decodeAll(t, im)
	if insts[0] != (straight.Inst{Op: straight.ADD, Src1: 4, Src2: 3}) {
		t.Errorf("space-separated operands: %v", insts[0])
	}
	if len(insts) != 3 {
		t.Errorf("expected 3 instructions, got %d", len(insts))
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
main:
    ADDi [0], 7
    RMOV [1]
    SYS exit, [1]
`
	im := mustAssemble(t, src)
	dis := Disassemble(im)
	for _, want := range []string{"main:", "ADDi [0], 7", "RMOV [1]", "SYS 0, [1], [0]"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func decodeAll(t *testing.T, im *program.Image) []straight.Inst {
	t.Helper()
	out := make([]straight.Inst, len(im.Text))
	for i, w := range im.Text {
		inst, err := straight.Decode(w)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		out[i] = inst
	}
	return out
}
