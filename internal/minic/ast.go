package minic

// AST node definitions. Every node records the source position of its
// first token for diagnostics.

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// File is a parsed translation unit.
type File struct {
	Funcs   []*FuncDecl
	Globals []*VarDecl
	// Structs and EnumConsts are registered during parsing and shared
	// with the IR generator.
	Structs    map[string]*StructType
	EnumConsts map[string]int32
}

// FuncDecl is a function definition or prototype (Body == nil).
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    *Type
	Params []Param
	Body   *BlockStmt
}

// Param is a function parameter.
type Param struct {
	Name string
	Type *Type
}

// Sig returns the function's signature as a TFunc type.
func (f *FuncDecl) Sig() *Type {
	sig := &Type{Kind: TFunc, Ret: f.Ret}
	for _, p := range f.Params {
		sig.Params = append(sig.Params, p.Type)
	}
	return sig
}

// VarDecl declares a variable (global or local).
type VarDecl struct {
	Pos  Pos
	Name string
	Type *Type
	Init Expr // nil, scalar Expr, *InitList, or *StringLit
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// BlockStmt is a brace-enclosed statement list.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares local variables.
type DeclStmt struct {
	Pos   Pos
	Decls []*VarDecl
}

// ExprStmt evaluates an expression for its effects.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do { } while loop.
type DoWhileStmt struct {
	Pos  Pos
	Body Stmt
	Cond Expr
}

// ForStmt is a for loop; Init may be a DeclStmt or ExprStmt; any part may
// be nil.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Pos Pos
	X   Expr // nil for void return
}

// BreakStmt exits the innermost loop or switch.
type BreakStmt struct{ Pos Pos }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ Pos Pos }

// SwitchStmt is a C switch restricted to top-level case/default labels.
// Cases execute in order with fallthrough, as in C.
type SwitchStmt struct {
	Pos   Pos
	Cond  Expr
	Cases []SwitchCase
}

// SwitchCase is one labeled arm; Labels empty means "default".
type SwitchCase struct {
	Pos    Pos
	Labels []Expr // constant expressions
	IsDflt bool
	Body   []Stmt
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Pos Pos }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*SwitchStmt) stmt()   {}
func (*EmptyStmt) stmt()    {}

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// NumberLit is an integer or character literal.
type NumberLit struct {
	Pos Pos
	Val int32
	// Unsigned marks literals with a 'u' suffix or hex literals with the
	// sign bit set.
	Unsigned bool
}

// StringLit is a string literal (decays to char* backed by static data).
type StringLit struct {
	Pos Pos
	Val string
}

// Ident names a variable, parameter, function, or enum constant.
type Ident struct {
	Pos  Pos
	Name string
}

// Unary is a prefix or postfix unary operation: one of
// "-", "+", "!", "~", "*", "&", "++", "--".
type Unary struct {
	Pos     Pos
	Op      string
	X       Expr
	Postfix bool // for ++/--
}

// Binary is a binary operation (arithmetic, comparison, logical).
type Binary struct {
	Pos  Pos
	Op   string
	X, Y Expr
}

// Assign is "=" or a compound assignment ("+=", ...).
type Assign struct {
	Pos Pos
	Op  string // "=", "+=", ...
	LHS Expr
	RHS Expr
}

// Cond is the ternary operator.
type Cond struct {
	Pos     Pos
	C, X, Y Expr
}

// Call invokes a function (direct by name, or through a function
// pointer expression).
type Call struct {
	Pos  Pos
	Fun  Expr
	Args []Expr
}

// Index is array subscripting.
type Index struct {
	Pos  Pos
	X, I Expr
}

// Member is field access: X.Name or X->Name.
type Member struct {
	Pos   Pos
	X     Expr
	Name  string
	Arrow bool
}

// Cast is an explicit type conversion.
type Cast struct {
	Pos Pos
	To  *Type
	X   Expr
}

// SizeofType is sizeof(type); sizeof expr parses to a NumberLit after
// type checking in irgen.
type SizeofType struct {
	Pos Pos
	T   *Type
}

// SizeofExpr is sizeof applied to an expression.
type SizeofExpr struct {
	Pos Pos
	X   Expr
}

// InitList is a braced initializer list for arrays and structs.
type InitList struct {
	Pos   Pos
	Items []Expr
}

func (*NumberLit) expr()  {}
func (*StringLit) expr()  {}
func (*Ident) expr()      {}
func (*Unary) expr()      {}
func (*Binary) expr()     {}
func (*Assign) expr()     {}
func (*Cond) expr()       {}
func (*Call) expr()       {}
func (*Index) expr()      {}
func (*Member) expr()     {}
func (*Cast) expr()       {}
func (*SizeofType) expr() {}
func (*SizeofExpr) expr() {}
func (*InitList) expr()   {}
