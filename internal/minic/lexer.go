// Package minic implements the front end of the MiniC language: a C
// subset sufficient for the paper's workloads (Dhrystone- and
// CoreMark-class integer programs). It provides a lexer, a recursive-
// descent parser producing an AST, and the type definitions shared with
// the IR generator.
//
// Supported: void/char/short/int (signed and unsigned), pointers, fixed
// arrays, structs, enums, function pointers `T (*f)(...)`, all integer
// operators, control flow (if/else, while, do-while, for, switch, break,
// continue, return), globals with initializers, string/char literals,
// sizeof, and the builtins putchar/putint/putuint/puthex/exit/cycles.
package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct   // operators and punctuation
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokenKind
	Text string
	// Val is the value of a number or char literal.
	Val int32
	// Str is the decoded value of a string literal.
	Str  string
	Line int
	Col  int
}

// Error is a front-end diagnostic with position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("minic: %d:%d: %s", e.Line, e.Col, e.Msg) }

var keywords = map[string]bool{
	"void": true, "char": true, "short": true, "int": true, "long": true,
	"unsigned": true, "signed": true, "struct": true, "enum": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "sizeof": true, "const": true,
	"static": true, "register": true, "extern": true,
}

// punct3/punct2 list multi-character operators, longest match first.
var punct3 = []string{"<<=", ">>=", "..."}
var punct2 = []string{
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

// Lex scans the whole source into tokens. Comments (// and /* */) and
// preprocessor-style lines beginning with '#' are skipped (the workloads
// use no macros; #-lines are tolerated so headers can be pasted).
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	n := len(src)
	adv := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '#':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				adv(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			adv(2)
			closed := false
			for i+1 < n {
				if src[i] == '*' && src[i+1] == '/' {
					adv(2)
					closed = true
					break
				}
				adv(1)
			}
			if !closed {
				return nil, &Error{startLine, startCol, "unterminated block comment"}
			}
		case isIdentStart(c):
			start := i
			startLine, startCol := line, col
			for i < n && isIdentChar(src[i]) {
				adv(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Line: startLine, Col: startCol})
		case c >= '0' && c <= '9':
			start := i
			startLine, startCol := line, col
			for i < n && (isIdentChar(src[i])) {
				adv(1)
			}
			text := src[start:i]
			v, err := parseNumber(text)
			if err != nil {
				return nil, &Error{startLine, startCol, err.Error()}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: text, Val: v, Line: startLine, Col: startCol})
		case c == '"':
			startLine, startCol := line, col
			s, consumed, err := scanString(src[i:], '"')
			if err != nil {
				return nil, &Error{startLine, startCol, err.Error()}
			}
			adv(consumed)
			toks = append(toks, Token{Kind: TokString, Text: src[i-consumed : i], Str: s, Line: startLine, Col: startCol})
		case c == '\'':
			startLine, startCol := line, col
			s, consumed, err := scanString(src[i:], '\'')
			if err != nil {
				return nil, &Error{startLine, startCol, err.Error()}
			}
			if len(s) != 1 {
				return nil, &Error{startLine, startCol, "char literal must be one character"}
			}
			adv(consumed)
			toks = append(toks, Token{Kind: TokChar, Text: s, Val: int32(s[0]), Line: startLine, Col: startCol})
		default:
			startLine, startCol := line, col
			matched := ""
			for _, p := range punct3 {
				if strings.HasPrefix(src[i:], p) {
					matched = p
					break
				}
			}
			if matched == "" {
				for _, p := range punct2 {
					if strings.HasPrefix(src[i:], p) {
						matched = p
						break
					}
				}
			}
			if matched == "" {
				if strings.IndexByte("+-*/%&|^~!<>=?:;,.(){}[]", c) < 0 {
					return nil, &Error{startLine, startCol, fmt.Sprintf("unexpected character %q", c)}
				}
				matched = string(c)
			}
			adv(len(matched))
			toks = append(toks, Token{Kind: TokPunct, Text: matched, Line: startLine, Col: startCol})
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentChar(c byte) bool { return isIdentStart(c) || ('0' <= c && c <= '9') }

func parseNumber(text string) (int32, error) {
	// Strip C suffixes (u, U, l, L).
	t := strings.TrimRight(text, "uUlL")
	v, err := strconv.ParseUint(t, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number literal %q", text)
	}
	if v > 0xFFFFFFFF {
		return 0, fmt.Errorf("number literal %q exceeds 32 bits", text)
	}
	return int32(uint32(v)), nil
}

// scanString scans a quoted literal starting at s[0]==quote, returning the
// decoded contents and the number of bytes consumed.
func scanString(s string, quote byte) (string, int, error) {
	var b strings.Builder
	i := 1
	for i < len(s) {
		c := s[i]
		if c == quote {
			return b.String(), i + 1, nil
		}
		if c == '\n' {
			break
		}
		if c == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '0':
				b.WriteByte(0)
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
			i++
			continue
		}
		b.WriteByte(c)
		i++
	}
	return "", 0, fmt.Errorf("unterminated literal")
}
