package minic

import "fmt"

// Parse lexes and parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		file: &File{
			Structs:    make(map[string]*StructType),
			EnumConsts: make(map[string]int32),
		},
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

type parser struct {
	toks []Token
	pos  int
	file *File
}

func (p *parser) tok() Token { return p.toks[p.pos] }
func (p *parser) peek(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(t Token, format string, args ...any) error {
	return &Error{t.Line, t.Col, fmt.Sprintf(format, args...)}
}

func (p *parser) at(kind TokenKind, text string) bool {
	t := p.tok()
	return t.Kind == kind && t.Text == text
}

func (p *parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokenKind, text string) (Token, error) {
	t := p.tok()
	if t.Kind != kind || t.Text != text {
		return t, p.errf(t, "expected %q, found %q", text, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) posOf(t Token) Pos { return Pos{t.Line, t.Col} }

// ---- Declarations ----

func (p *parser) parseFile() error {
	for p.tok().Kind != TokEOF {
		if err := p.parseTopDecl(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseTopDecl() error {
	t := p.tok()
	if !p.isTypeStart() {
		return p.errf(t, "expected declaration, found %q", t.Text)
	}
	base, err := p.parseTypeSpec()
	if err != nil {
		return err
	}
	// "struct S { ... };" or "enum { ... };" alone.
	if p.accept(TokPunct, ";") {
		return nil
	}
	first := true
	for {
		name, typ, isFunc, params, err := p.parseDeclarator(base)
		if err != nil {
			return err
		}
		if isFunc {
			if !first {
				return p.errf(p.tok(), "function declarator in variable list")
			}
			fd := &FuncDecl{Pos: p.posOf(t), Name: name, Ret: typ, Params: params}
			if p.at(TokPunct, "{") {
				body, err := p.parseBlock()
				if err != nil {
					return err
				}
				fd.Body = body
				p.file.Funcs = append(p.file.Funcs, fd)
				return nil
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return err
			}
			p.file.Funcs = append(p.file.Funcs, fd) // prototype
			return nil
		}
		vd := &VarDecl{Pos: p.posOf(t), Name: name, Type: typ}
		if p.accept(TokPunct, "=") {
			init, err := p.parseInitializer()
			if err != nil {
				return err
			}
			vd.Init = init
		}
		p.file.Globals = append(p.file.Globals, vd)
		first = false
		if p.accept(TokPunct, ",") {
			continue
		}
		_, err = p.expect(TokPunct, ";")
		return err
	}
}

func (p *parser) isTypeStart() bool {
	t := p.tok()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "short", "int", "long", "unsigned", "signed",
		"struct", "enum", "const", "static", "extern", "register":
		return true
	}
	return false
}

// parseTypeSpec parses qualifiers and a base type.
func (p *parser) parseTypeSpec() (*Type, error) {
	for p.at(TokKeyword, "const") || p.at(TokKeyword, "static") ||
		p.at(TokKeyword, "extern") || p.at(TokKeyword, "register") {
		p.next()
	}
	t := p.tok()
	switch {
	case p.accept(TokKeyword, "struct"):
		return p.parseStructType()
	case p.accept(TokKeyword, "enum"):
		return p.parseEnumType()
	}
	unsigned := false
	signed := false
	base := ""
	for {
		switch {
		case p.accept(TokKeyword, "unsigned"):
			unsigned = true
		case p.accept(TokKeyword, "signed"):
			signed = true
		case p.accept(TokKeyword, "const"):
		case p.at(TokKeyword, "void") || p.at(TokKeyword, "char") ||
			p.at(TokKeyword, "short") || p.at(TokKeyword, "int") || p.at(TokKeyword, "long"):
			if base != "" {
				// "short int", "long int" — fold the int.
				if p.tok().Text == "int" && (base == "short" || base == "long") {
					p.next()
					continue
				}
				return nil, p.errf(p.tok(), "unexpected type keyword %q", p.tok().Text)
			}
			base = p.next().Text
			continue
		default:
			goto done
		}
	}
done:
	if base == "" {
		if unsigned || signed {
			base = "int"
		} else {
			return nil, p.errf(t, "expected type")
		}
	}
	_ = signed
	switch base {
	case "void":
		return TypeVoid, nil
	case "char":
		if unsigned {
			return TypeUChar, nil
		}
		return TypeChar, nil
	case "short":
		if unsigned {
			return TypeUShort, nil
		}
		return TypeShort, nil
	case "int", "long":
		if unsigned {
			return TypeUInt, nil
		}
		return TypeInt, nil
	}
	return nil, p.errf(t, "unsupported type %q", base)
}

func (p *parser) parseStructType() (*Type, error) {
	nameTok := p.tok()
	name := ""
	if nameTok.Kind == TokIdent {
		name = p.next().Text
	}
	if !p.at(TokPunct, "{") {
		// Reference to a (possibly forward-declared) struct.
		if name == "" {
			return nil, p.errf(nameTok, "anonymous struct reference")
		}
		st, ok := p.file.Structs[name]
		if !ok {
			st = &StructType{Name: name}
			p.file.Structs[name] = st
		}
		return &Type{Kind: TStruct, Struct: st}, nil
	}
	p.next() // {
	st := p.file.Structs[name]
	if st == nil {
		st = &StructType{Name: name}
		if name != "" {
			p.file.Structs[name] = st
		}
	} else if len(st.Fields) > 0 {
		return nil, p.errf(nameTok, "redefinition of struct %s", name)
	}
	for !p.at(TokPunct, "}") {
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		for {
			fname, ftyp, isFunc, _, err := p.parseDeclarator(base)
			if err != nil {
				return nil, err
			}
			if isFunc {
				return nil, p.errf(p.tok(), "function field in struct")
			}
			st.Fields = append(st.Fields, Field{Name: fname, Type: ftyp})
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if err := st.Layout(); err != nil {
		return nil, p.errf(nameTok, "struct %s: %v", name, err)
	}
	return &Type{Kind: TStruct, Struct: st}, nil
}

func (p *parser) parseEnumType() (*Type, error) {
	if p.tok().Kind == TokIdent {
		p.next() // tag name, unused
	}
	if p.accept(TokPunct, "{") {
		next := int32(0)
		for !p.at(TokPunct, "}") {
			nameTok := p.tok()
			if nameTok.Kind != TokIdent {
				return nil, p.errf(nameTok, "expected enum constant name")
			}
			p.next()
			if p.accept(TokPunct, "=") {
				e, err := p.parseConditional()
				if err != nil {
					return nil, err
				}
				v, err := p.evalConst(e)
				if err != nil {
					return nil, err
				}
				next = v
			}
			p.file.EnumConsts[nameTok.Text] = next
			next++
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
	}
	return TypeInt, nil
}

// parseDeclarator parses '*'* (IDENT | '(' '*' IDENT ')' '(' params ')')
// ('[' const ']')*. It returns the declared name and full type; isFunc is
// true when the declarator is a function (name followed by a parameter
// list), in which case params holds the parameters and typ the return
// type.
func (p *parser) parseDeclarator(base *Type) (name string, typ *Type, isFunc bool, params []Param, err error) {
	typ = base
	for p.accept(TokPunct, "*") {
		for p.accept(TokKeyword, "const") {
		}
		typ = PtrTo(typ)
	}
	// Function pointer: ( * name ) ( params )
	if p.at(TokPunct, "(") && p.peek(1).Kind == TokPunct && p.peek(1).Text == "*" {
		p.next() // (
		p.next() // *
		nameTok := p.tok()
		if nameTok.Kind != TokIdent {
			return "", nil, false, nil, p.errf(nameTok, "expected function pointer name")
		}
		p.next()
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return "", nil, false, nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return "", nil, false, nil, err
		}
		ps, err := p.parseParams()
		if err != nil {
			return "", nil, false, nil, err
		}
		sig := &Type{Kind: TFunc, Ret: typ}
		for _, pp := range ps {
			sig.Params = append(sig.Params, pp.Type)
		}
		return nameTok.Text, PtrTo(sig), false, nil, nil
	}
	nameTok := p.tok()
	if nameTok.Kind != TokIdent {
		return "", nil, false, nil, p.errf(nameTok, "expected identifier in declarator")
	}
	p.next()
	name = nameTok.Text
	if p.accept(TokPunct, "(") {
		ps, err := p.parseParams()
		if err != nil {
			return "", nil, false, nil, err
		}
		return name, typ, true, ps, nil
	}
	for p.accept(TokPunct, "[") {
		if p.accept(TokPunct, "]") {
			// Unsized arrays decay to pointers (parameters) — represent
			// directly as pointer.
			typ = PtrTo(typ)
			continue
		}
		e, err := p.parseConditional()
		if err != nil {
			return "", nil, false, nil, err
		}
		n, err := p.evalConst(e)
		if err != nil {
			return "", nil, false, nil, err
		}
		if n <= 0 {
			return "", nil, false, nil, p.errf(nameTok, "array size must be positive")
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return "", nil, false, nil, err
		}
		typ = wrapArray(typ, int(n))
	}
	return name, typ, false, nil, nil
}

// wrapArray appends an array dimension innermost-last so that
// int a[2][3] has type (int[3])[2].
func wrapArray(t *Type, n int) *Type {
	if t.Kind == TArray {
		return ArrayOf(wrapArray(t.Elem, n), t.ArrayLen)
	}
	return ArrayOf(t, n)
}

func (p *parser) parseParams() ([]Param, error) {
	var params []Param
	if p.accept(TokPunct, ")") {
		return params, nil
	}
	if p.at(TokKeyword, "void") && p.peek(1).Kind == TokPunct && p.peek(1).Text == ")" {
		p.next()
		p.next()
		return params, nil
	}
	for {
		base, err := p.parseTypeSpec()
		if err != nil {
			return nil, err
		}
		// Parameter name is optional in prototypes; an anonymous
		// parameter is a bare type (possibly with '*'s).
		typ := base
		for p.accept(TokPunct, "*") {
			typ = PtrTo(typ)
		}
		name := ""
		if p.tok().Kind == TokIdent {
			name = p.next().Text
			for p.accept(TokPunct, "[") {
				// Array parameters decay to pointers.
				if !p.accept(TokPunct, "]") {
					if _, err := p.parseConditional(); err != nil {
						return nil, err
					}
					if _, err := p.expect(TokPunct, "]"); err != nil {
						return nil, err
					}
				}
				typ = PtrTo(typ)
			}
		} else if p.at(TokPunct, "(") && p.peek(1).Text == "*" {
			// Function-pointer parameter; typ already includes any leading
			// '*'s of the return type.
			n2, t2, _, _, err := p.parseDeclarator(typ)
			if err != nil {
				return nil, err
			}
			name, typ = n2, t2
		}
		if typ.Kind == TArray {
			typ = PtrTo(typ.Elem)
		}
		params = append(params, Param{Name: name, Type: typ})
		if p.accept(TokPunct, ",") {
			continue
		}
		_, err = p.expect(TokPunct, ")")
		return params, err
	}
}

func (p *parser) parseInitializer() (Expr, error) {
	if p.at(TokPunct, "{") {
		t := p.next()
		il := &InitList{Pos: p.posOf(t)}
		for !p.at(TokPunct, "}") {
			item, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			il.Items = append(il.Items, item)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(TokPunct, "}"); err != nil {
			return nil, err
		}
		return il, nil
	}
	return p.parseAssign()
}

// ---- Statements ----

func (p *parser) parseBlock() (*BlockStmt, error) {
	t, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: p.posOf(t)}
	for !p.at(TokPunct, "}") {
		if p.tok().Kind == TokEOF {
			return nil, p.errf(p.tok(), "unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.tok()
	switch {
	case p.at(TokPunct, "{"):
		return p.parseBlock()
	case p.at(TokPunct, ";"):
		p.next()
		return &EmptyStmt{Pos: p.posOf(t)}, nil
	case p.isTypeStart():
		return p.parseDeclStmt()
	case p.accept(TokKeyword, "if"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(TokKeyword, "else") {
			if els, err = p.parseStmt(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{Pos: p.posOf(t), Cond: cond, Then: then, Else: els}, nil
	case p.accept(TokKeyword, "while"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: p.posOf(t), Cond: cond, Body: body}, nil
	case p.accept(TokKeyword, "do"):
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "while"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Pos: p.posOf(t), Body: body, Cond: cond}, nil
	case p.accept(TokKeyword, "for"):
		return p.parseFor(t)
	case p.accept(TokKeyword, "return"):
		rs := &ReturnStmt{Pos: p.posOf(t)}
		if !p.at(TokPunct, ";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.X = x
		}
		_, err := p.expect(TokPunct, ";")
		return rs, err
	case p.accept(TokKeyword, "break"):
		_, err := p.expect(TokPunct, ";")
		return &BreakStmt{Pos: p.posOf(t)}, err
	case p.accept(TokKeyword, "continue"):
		_, err := p.expect(TokPunct, ";")
		return &ContinueStmt{Pos: p.posOf(t)}, err
	case p.accept(TokKeyword, "switch"):
		return p.parseSwitch(t)
	default:
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: p.posOf(t), X: x}, nil
	}
}

func (p *parser) parseDeclStmt() (Stmt, error) {
	t := p.tok()
	base, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{Pos: p.posOf(t)}
	if p.accept(TokPunct, ";") {
		return ds, nil // bare struct/enum definition in a block
	}
	for {
		name, typ, isFunc, _, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		if isFunc {
			return nil, p.errf(t, "nested function declarations are not supported")
		}
		vd := &VarDecl{Pos: p.posOf(t), Name: name, Type: typ}
		if p.accept(TokPunct, "=") {
			init, err := p.parseInitializer()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		ds.Decls = append(ds.Decls, vd)
		if p.accept(TokPunct, ",") {
			continue
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return ds, nil
	}
}

func (p *parser) parseFor(t Token) (Stmt, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: p.posOf(t)}
	if !p.at(TokPunct, ";") {
		if p.isTypeStart() {
			init, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			fs.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{Pos: p.posOf(t), X: x}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(TokPunct, ";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(TokPunct, ")") {
		post, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

func (p *parser) parseSwitch(t Token) (Stmt, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	sw := &SwitchStmt{Pos: p.posOf(t), Cond: cond}
	for !p.at(TokPunct, "}") {
		ct := p.tok()
		var sc SwitchCase
		sc.Pos = p.posOf(ct)
		switch {
		case p.accept(TokKeyword, "case"):
			for {
				e, err := p.parseConditional()
				if err != nil {
					return nil, err
				}
				sc.Labels = append(sc.Labels, e)
				if _, err := p.expect(TokPunct, ":"); err != nil {
					return nil, err
				}
				if !p.accept(TokKeyword, "case") {
					break
				}
			}
			if p.accept(TokKeyword, "default") {
				sc.IsDflt = true
				if _, err := p.expect(TokPunct, ":"); err != nil {
					return nil, err
				}
			}
		case p.accept(TokKeyword, "default"):
			sc.IsDflt = true
			if _, err := p.expect(TokPunct, ":"); err != nil {
				return nil, err
			}
			for p.accept(TokKeyword, "case") {
				e, err := p.parseConditional()
				if err != nil {
					return nil, err
				}
				sc.Labels = append(sc.Labels, e)
				if _, err := p.expect(TokPunct, ":"); err != nil {
					return nil, err
				}
			}
		default:
			return nil, p.errf(ct, "expected case or default in switch")
		}
		for !p.at(TokKeyword, "case") && !p.at(TokKeyword, "default") && !p.at(TokPunct, "}") {
			s, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			sc.Body = append(sc.Body, s)
		}
		sw.Cases = append(sw.Cases, sc)
	}
	p.next() // }
	return sw, nil
}

// ---- Expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) {
	x, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	for p.at(TokPunct, ",") {
		t := p.next()
		y, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: p.posOf(t), Op: ",", X: x, Y: y}
	}
	return x, nil
}

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) parseAssign() (Expr, error) {
	x, err := p.parseConditional()
	if err != nil {
		return nil, err
	}
	t := p.tok()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		rhs, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		return &Assign{Pos: p.posOf(t), Op: t.Text, LHS: x, RHS: rhs}, nil
	}
	return x, nil
}

func (p *parser) parseConditional() (Expr, error) {
	c, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	if p.at(TokPunct, "?") {
		t := p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		y, err := p.parseConditional()
		if err != nil {
			return nil, err
		}
		return &Cond{Pos: p.posOf(t), C: c, X: x, Y: y}, nil
	}
	return c, nil
}

// binary operator precedence levels, loosest first.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", "<=", ">", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.parseUnary()
	}
	x, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.Kind != TokPunct || !contains(binLevels[level], t.Text) {
			return x, nil
		}
		p.next()
		y, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		x = &Binary{Pos: p.posOf(t), Op: t.Text, X: x, Y: y}
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.tok()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "+", "!", "~", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Pos: p.posOf(t), Op: t.Text, X: x}, nil
		case "++", "--":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Pos: p.posOf(t), Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			if p.peekIsType(1) {
				p.next() // (
				base, err := p.parseTypeSpec()
				if err != nil {
					return nil, err
				}
				typ := base
				for p.accept(TokPunct, "*") {
					typ = PtrTo(typ)
				}
				if _, err := p.expect(TokPunct, ")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &Cast{Pos: p.posOf(t), To: typ, X: x}, nil
			}
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.next()
		if p.at(TokPunct, "(") && p.peekIsType(1) {
			p.next()
			base, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			typ := base
			for p.accept(TokPunct, "*") {
				typ = PtrTo(typ)
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			return &SizeofType{Pos: p.posOf(t), T: typ}, nil
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &SizeofExpr{Pos: p.posOf(t), X: x}, nil
	}
	return p.parsePostfix()
}

// peekIsType reports whether the token at offset n begins a type.
func (p *parser) peekIsType(n int) bool {
	t := p.peek(n)
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "short", "int", "long", "unsigned", "signed",
		"struct", "enum", "const":
		return true
	}
	return false
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		switch {
		case p.accept(TokPunct, "["):
			i, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{Pos: p.posOf(t), X: x, I: i}
		case p.accept(TokPunct, "("):
			call := &Call{Pos: p.posOf(t), Fun: x}
			for !p.at(TokPunct, ")") {
				a, err := p.parseAssign()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(TokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(TokPunct, ")"); err != nil {
				return nil, err
			}
			x = call
		case p.accept(TokPunct, "."):
			nt := p.tok()
			if nt.Kind != TokIdent {
				return nil, p.errf(nt, "expected field name")
			}
			p.next()
			x = &Member{Pos: p.posOf(t), X: x, Name: nt.Text}
		case p.accept(TokPunct, "->"):
			nt := p.tok()
			if nt.Kind != TokIdent {
				return nil, p.errf(nt, "expected field name")
			}
			p.next()
			x = &Member{Pos: p.posOf(t), X: x, Name: nt.Text, Arrow: true}
		case p.at(TokPunct, "++") || p.at(TokPunct, "--"):
			p.next()
			x = &Unary{Pos: p.posOf(t), Op: t.Text, X: x, Postfix: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.tok()
	switch t.Kind {
	case TokNumber:
		p.next()
		unsigned := false
		for _, c := range t.Text {
			if c == 'u' || c == 'U' {
				unsigned = true
			}
		}
		return &NumberLit{Pos: p.posOf(t), Val: t.Val, Unsigned: unsigned}, nil
	case TokChar:
		p.next()
		return &NumberLit{Pos: p.posOf(t), Val: t.Val}, nil
	case TokString:
		p.next()
		s := t.Str
		// Adjacent string literals concatenate.
		for p.tok().Kind == TokString {
			s += p.next().Str
		}
		return &StringLit{Pos: p.posOf(t), Val: s}, nil
	case TokIdent:
		p.next()
		return &Ident{Pos: p.posOf(t), Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			_, err = p.expect(TokPunct, ")")
			return x, err
		}
	}
	return nil, p.errf(t, "unexpected token %q in expression", t.Text)
}

// evalConst evaluates a constant expression at parse time (array sizes,
// enum values, case labels).
func (p *parser) evalConst(e Expr) (int32, error) {
	switch x := e.(type) {
	case *NumberLit:
		return x.Val, nil
	case *Ident:
		if v, ok := p.file.EnumConsts[x.Name]; ok {
			return v, nil
		}
		return 0, &Error{x.Pos.Line, x.Pos.Col, fmt.Sprintf("%q is not a constant", x.Name)}
	case *Unary:
		v, err := p.evalConst(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "-":
			return -v, nil
		case "+":
			return v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *Binary:
		a, err := p.evalConst(x.X)
		if err != nil {
			return 0, err
		}
		b, err := p.evalConst(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, &Error{x.Pos.Line, x.Pos.Col, "division by zero in constant"}
			}
			return a / b, nil
		case "%":
			if b == 0 {
				return 0, &Error{x.Pos.Line, x.Pos.Col, "division by zero in constant"}
			}
			return a % b, nil
		case "<<":
			return a << (uint32(b) & 31), nil
		case ">>":
			return a >> (uint32(b) & 31), nil
		case "&":
			return a & b, nil
		case "|":
			return a | b, nil
		case "^":
			return a ^ b, nil
		}
	case *SizeofType:
		return int32(x.T.Size()), nil
	case *Cast:
		return p.evalConst(x.X)
	}
	return 0, fmt.Errorf("minic: expression is not constant (%T)", e)
}

// EvalConstExpr exposes constant evaluation for the IR generator (case
// labels reference enum constants).
func (f *File) EvalConstExpr(e Expr) (int32, bool) {
	p := &parser{file: f}
	v, err := p.evalConst(e)
	if err != nil {
		return 0, false
	}
	return v, true
}
