package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`int x = 0x2A; // comment
/* block
   comment */
char c = 'a';
char *s = "hi\n";
if (x <= 42 && x != 0) x <<= 2;
#pragma ignored
`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		if tk.Kind == TokEOF {
			break
		}
		kinds = append(kinds, tk.Text)
	}
	want := []string{"int", "x", "=", "0x2A", ";", "char", "c", "=", "a", ";",
		"char", "*", "s", "=", `"hi\n"`, ";",
		"if", "(", "x", "<=", "42", "&&", "x", "!=", "0", ")", "x", "<<=", "2", ";"}
	if len(kinds) != len(want) {
		t.Fatalf("token count %d want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d: %q want %q", i, kinds[i], want[i])
		}
	}
}

func TestLexNumberForms(t *testing.T) {
	toks, err := Lex("0 42 0x10 0755 4000000000u 'z' '\\n' '\\0'")
	if err != nil {
		t.Fatal(err)
	}
	wantVals := []int32{0, 42, 16, 493, u32val(4000000000), 'z', '\n', 0}
	i := 0
	for _, tk := range toks {
		if tk.Kind == TokNumber || tk.Kind == TokChar {
			if tk.Val != wantVals[i] {
				t.Errorf("literal %d: %d want %d", i, tk.Val, wantVals[i])
			}
			i++
		}
	}
	if i != len(wantVals) {
		t.Errorf("found %d literals, want %d", i, len(wantVals))
	}
}

func u32val(v uint32) int32 { return int32(v) }

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"\"unterminated", "'ab'", "/* unterminated", "int @ x;"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q): expected error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Lex("int\n  x;")
	if toks[0].Line != 1 || toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("positions: %+v %+v", toks[0], toks[1])
	}
}

func TestParseDeclarations(t *testing.T) {
	f, err := Parse(`
struct Pt { int x, y; char tag; };
enum { A, B = 5, C };
int g1, g2 = 3;
short m[2][3];
int (*fp)(int, int);
int add(int a, int b) { return a + b; }
void proto(int);
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 2 {
		t.Fatalf("funcs: %d", len(f.Funcs))
	}
	if f.Funcs[0].Name != "add" || len(f.Funcs[0].Params) != 2 {
		t.Errorf("add decl wrong: %+v", f.Funcs[0])
	}
	if f.Funcs[1].Body != nil {
		t.Error("prototype should have nil body")
	}
	if len(f.Globals) != 4 {
		t.Fatalf("globals: %d", len(f.Globals))
	}
	if f.EnumConsts["B"] != 5 || f.EnumConsts["C"] != 6 {
		t.Errorf("enum values: %v", f.EnumConsts)
	}
	pt := f.Structs["Pt"]
	if pt == nil || len(pt.Fields) != 3 {
		t.Fatalf("struct Pt: %+v", pt)
	}
	if pt.Fields[1].Offset != 4 || pt.Fields[2].Offset != 8 {
		t.Errorf("Pt layout: %+v", pt.Fields)
	}
	var m *VarDecl
	for _, g := range f.Globals {
		if g.Name == "m" {
			m = g
		}
	}
	if m == nil || m.Type.Kind != TArray || m.Type.ArrayLen != 2 ||
		m.Type.Elem.Kind != TArray || m.Type.Elem.ArrayLen != 3 {
		t.Errorf("m type: %v", m.Type)
	}
	var fp *VarDecl
	for _, g := range f.Globals {
		if g.Name == "fp" {
			fp = g
		}
	}
	if fp == nil || fp.Type.Kind != TPtr || fp.Type.Elem.Kind != TFunc ||
		len(fp.Type.Elem.Params) != 2 {
		t.Errorf("fp type: %v", fp.Type)
	}
}

func TestParseStatementsAndExprs(t *testing.T) {
	f, err := Parse(`
int main() {
    int i;
    for (i = 0; i < 10; i++) { if (i == 3) continue; else break; }
    while (i) i--;
    do { i += 2; } while (i < 4);
    switch (i) { case 1: case 2: i = 9; break; default: ; }
    int x = i > 0 ? -i : ~i;
    return x && 1 || 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Funcs[0].Body
	if len(body.Stmts) != 7 {
		t.Errorf("statement count: %d", len(body.Stmts))
	}
	if _, ok := body.Stmts[1].(*ForStmt); !ok {
		t.Errorf("stmt 1 is %T, want ForStmt", body.Stmts[1])
	}
	if _, ok := body.Stmts[4].(*SwitchStmt); !ok {
		t.Errorf("stmt 4 is %T, want SwitchStmt", body.Stmts[4])
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"int main( { }",
		"int main() { int x = ; }",
		"struct S { int x; ",
		"int a[0];",
		"bogus decl;",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestTypeSizesAndAlignment(t *testing.T) {
	if TypeInt.Size() != 4 || TypeChar.Size() != 1 || TypeShort.Size() != 2 {
		t.Error("scalar sizes")
	}
	p := PtrTo(TypeChar)
	if p.Size() != 4 || p.Align() != 4 {
		t.Error("pointer size/align")
	}
	a := ArrayOf(TypeShort, 5)
	if a.Size() != 10 || a.Align() != 2 {
		t.Error("array size/align")
	}
	st := &StructType{Name: "S", Fields: []Field{
		{Name: "c", Type: TypeChar},
		{Name: "i", Type: TypeInt},
		{Name: "h", Type: TypeShort},
	}}
	if err := st.Layout(); err != nil {
		t.Fatal(err)
	}
	if st.Fields[1].Offset != 4 || st.Fields[2].Offset != 8 {
		t.Errorf("layout: %+v", st.Fields)
	}
	tS := &Type{Kind: TStruct, Struct: st}
	if tS.Size() != 12 || tS.Align() != 4 {
		t.Errorf("struct size %d align %d", tS.Size(), tS.Align())
	}
}

func TestTypeEqualAndPromote(t *testing.T) {
	if !PtrTo(TypeInt).Equal(PtrTo(TypeInt)) {
		t.Error("identical pointer types must be equal")
	}
	if PtrTo(TypeInt).Equal(PtrTo(TypeChar)) {
		t.Error("different pointee types must differ")
	}
	if TypeChar.Promote() != TypeInt || TypeUShort.Promote() != TypeInt {
		t.Error("integer promotion to int")
	}
	if TypeUInt.Promote() != TypeUInt {
		t.Error("unsigned int stays unsigned")
	}
}

// TestLexNeverPanics feeds random bytes to the lexer.
func TestLexNeverPanics(t *testing.T) {
	f := func(src string) bool {
		Lex(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanics feeds token-shaped noise to the parser.
func TestParseNeverPanics(t *testing.T) {
	words := []string{"int", "char", "struct", "if", "(", ")", "{", "}", "x",
		"1", "+", "*", ";", ",", "[", "]", "=", "for", "while", "return"}
	f := func(seed []uint8) bool {
		var b strings.Builder
		for _, s := range seed {
			b.WriteString(words[int(s)%len(words)])
			b.WriteByte(' ')
		}
		Parse(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
