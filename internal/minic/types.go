package minic

import "fmt"

// TypeKind classifies MiniC types.
type TypeKind uint8

const (
	TVoid TypeKind = iota
	TChar
	TShort
	TInt
	TPtr
	TArray
	TStruct
	TFunc // function or function-pointer target signature
)

// Type is a MiniC type. Types are structural except structs, which are
// nominal (identified by their StructType).
type Type struct {
	Kind     TypeKind
	Unsigned bool
	Elem     *Type // pointee (TPtr) or element (TArray)
	ArrayLen int
	Struct   *StructType
	// Function signature (TFunc): result and parameter types.
	Ret    *Type
	Params []*Type
}

// StructType is a named aggregate with laid-out fields.
type StructType struct {
	Name   string
	Fields []Field
	size   int
	align  int
}

// Field is one struct member.
type Field struct {
	Name   string
	Type   *Type
	Offset int
}

// Field returns the named field, or nil.
func (s *StructType) Field(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Layout computes field offsets, size, and alignment.
func (s *StructType) Layout() error {
	off := 0
	align := 1
	for i := range s.Fields {
		t := s.Fields[i].Type
		a := t.Align()
		if a > align {
			align = a
		}
		off = alignUp(off, a)
		s.Fields[i].Offset = off
		sz := t.Size()
		if sz <= 0 {
			return fmt.Errorf("field %s has incomplete type", s.Fields[i].Name)
		}
		off += sz
	}
	s.size = alignUp(off, align)
	s.align = align
	return nil
}

func alignUp(n, a int) int { return (n + a - 1) &^ (a - 1) }

// Predefined scalar types.
var (
	TypeVoid   = &Type{Kind: TVoid}
	TypeChar   = &Type{Kind: TChar}
	TypeUChar  = &Type{Kind: TChar, Unsigned: true}
	TypeShort  = &Type{Kind: TShort}
	TypeUShort = &Type{Kind: TShort, Unsigned: true}
	TypeInt    = &Type{Kind: TInt}
	TypeUInt   = &Type{Kind: TInt, Unsigned: true}
)

// PtrTo returns a pointer type to t.
func PtrTo(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// ArrayOf returns an array type.
func ArrayOf(t *Type, n int) *Type { return &Type{Kind: TArray, Elem: t, ArrayLen: n} }

// Size returns the size of the type in bytes (0 for void/function).
func (t *Type) Size() int {
	switch t.Kind {
	case TChar:
		return 1
	case TShort:
		return 2
	case TInt, TPtr:
		return 4
	case TArray:
		return t.ArrayLen * t.Elem.Size()
	case TStruct:
		return t.Struct.size
	}
	return 0
}

// Align returns the alignment of the type in bytes.
func (t *Type) Align() int {
	switch t.Kind {
	case TChar:
		return 1
	case TShort:
		return 2
	case TInt, TPtr:
		return 4
	case TArray:
		return t.Elem.Align()
	case TStruct:
		return t.Struct.align
	}
	return 1
}

// IsInteger reports whether t is an integer scalar.
func (t *Type) IsInteger() bool {
	return t.Kind == TChar || t.Kind == TShort || t.Kind == TInt
}

// IsScalar reports whether t is usable in arithmetic/conditions.
func (t *Type) IsScalar() bool { return t.IsInteger() || t.Kind == TPtr }

// Promote returns the type after integer promotion (everything computes
// as 32-bit int; unsignedness of int is preserved, smaller types promote
// to signed int as in C).
func (t *Type) Promote() *Type {
	switch t.Kind {
	case TChar, TShort:
		return TypeInt
	case TInt:
		if t.Unsigned {
			return TypeUInt
		}
		return TypeInt
	}
	return t
}

// Equal reports structural type equality (nominal for structs).
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind || t.Unsigned != o.Unsigned {
		return false
	}
	switch t.Kind {
	case TPtr:
		return t.Elem.Equal(o.Elem)
	case TArray:
		return t.ArrayLen == o.ArrayLen && t.Elem.Equal(o.Elem)
	case TStruct:
		return t.Struct == o.Struct
	case TFunc:
		if !t.Ret.Equal(o.Ret) || len(t.Params) != len(o.Params) {
			return false
		}
		for i := range t.Params {
			if !t.Params[i].Equal(o.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	u := ""
	if t.Unsigned {
		u = "unsigned "
	}
	switch t.Kind {
	case TVoid:
		return "void"
	case TChar:
		return u + "char"
	case TShort:
		return u + "short"
	case TInt:
		if t.Unsigned {
			return "unsigned"
		}
		return "int"
	case TPtr:
		return t.Elem.String() + "*"
	case TArray:
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case TStruct:
		return "struct " + t.Struct.Name
	case TFunc:
		return "func"
	}
	return "?"
}
