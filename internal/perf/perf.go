package perf

import (
	"fmt"
	"time"

	"straight/internal/bench"
	"straight/internal/cores/sscore"
	"straight/internal/cores/straightcore"
	"straight/internal/program"
	"straight/internal/uarch"
	"straight/internal/workloads"
)

// Kernel names one simulated machine: a core kind at a width.
type Kernel struct {
	// Name identifies the kernel in benchmark output and JSON baselines
	// (e.g. "straight-4way").
	Name string
	// Straight selects the STRAIGHT core; false selects the superscalar.
	Straight bool
	// Cfg is the Table I model configuration.
	Cfg uarch.Config
}

// Kernels returns the benchmarked machines: both cores at both widths,
// in fixed order (the JSON baseline and the golden files key on Name).
func Kernels() []Kernel {
	return []Kernel{
		{Name: "straight-4way", Straight: true, Cfg: uarch.Straight4Way()},
		{Name: "straight-2way", Straight: true, Cfg: uarch.Straight2Way()},
		{Name: "ss-4way", Straight: false, Cfg: uarch.SS4Way()},
		{Name: "ss-2way", Straight: false, Cfg: uarch.SS2Way()},
		{Name: "straight-4way-membound", Straight: true, Cfg: uarch.Straight4WayMemBound()},
		{Name: "ss-4way-membound", Straight: false, Cfg: uarch.SS4WayMemBound()},
	}
}

// KernelByName returns the kernel with the given Name.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("perf: unknown kernel %q", name)
}

// BuildImage compiles the workload for the kernel's ISA (cached by
// internal/bench's singleflight build cache). STRAIGHT images use the
// RE+ compiler at the paper's distance bound, matching the headline
// figures.
func BuildImage(k Kernel, w workloads.Workload, iters int) (*program.Image, error) {
	if k.Straight {
		return bench.BuildSTRAIGHT(w, iters, k.Cfg.MaxDistance, bench.ModeREP)
	}
	return bench.BuildRISCV(w, iters)
}

// RunResult is one measured simulation.
type RunResult struct {
	Stats   uarch.Stats
	Elapsed time.Duration
}

// KIPS returns simulated kilo-instructions retired per host second.
func (r RunResult) KIPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Retired) / 1000 / r.Elapsed.Seconds()
}

const runCycleCap = 2_000_000_000

// Options selects a measurement mode.
type Options struct {
	// NoIdleSkip disables the event-driven idle-cycle fast path, forcing
	// strict cycle-by-cycle stepping. Stats are bit-identical either way;
	// only wall-clock time changes.
	NoIdleSkip bool
}

// Run simulates the image to completion on the kernel's core with the
// tracer off (the non-traced fast path the benchmarks measure) and
// returns the counters plus wall-clock time.
func Run(k Kernel, im *program.Image) (RunResult, error) {
	return RunWith(k, im, Options{})
}

// RunWith is Run with an explicit measurement mode.
func RunWith(k Kernel, im *program.Image, o Options) (RunResult, error) {
	start := time.Now()
	var st uarch.Stats
	if k.Straight {
		res, err := straightcore.New(k.Cfg, im, straightcore.Options{}).
			Run(straightcore.Options{MaxCycles: runCycleCap, NoIdleSkip: o.NoIdleSkip})
		if err != nil {
			return RunResult{}, err
		}
		st = res.Stats
	} else {
		res, err := sscore.New(k.Cfg, im, sscore.Options{}).
			Run(sscore.Options{MaxCycles: runCycleCap, NoIdleSkip: o.NoIdleSkip})
		if err != nil {
			return RunResult{}, err
		}
		st = res.Stats
	}
	elapsed := time.Since(start)
	if err := st.Check(k.Cfg); err != nil {
		return RunResult{}, err
	}
	return RunResult{Stats: st, Elapsed: elapsed}, nil
}

// Runner multiplexes many runs through one reusable core: the first Run
// constructs it, later Runs recycle it with Core.Reset, so batched
// experiments pay construction cost once per configuration. Stats from a
// recycled core are bit-identical to a fresh core's (the Reset contract,
// DESIGN.md §12). Not safe for concurrent use.
type Runner struct {
	k    Kernel
	o    Options
	sc   *straightcore.Core
	ss   *sscore.Core
	runs int
}

// NewRunner returns a batch runner for the kernel. No core is built
// until the first Run.
func NewRunner(k Kernel, o Options) *Runner {
	return &Runner{k: k, o: o}
}

// Runs reports how many simulations this runner has executed.
func (r *Runner) Runs() int { return r.runs }

// Run simulates the image to completion, reusing the core from the
// previous call when there was one.
func (r *Runner) Run(im *program.Image) (RunResult, error) {
	start := time.Now()
	var st uarch.Stats
	if r.k.Straight {
		if r.sc == nil {
			r.sc = straightcore.New(r.k.Cfg, im, straightcore.Options{})
		} else {
			r.sc.Reset(im)
		}
		res, err := r.sc.Run(straightcore.Options{MaxCycles: runCycleCap, NoIdleSkip: r.o.NoIdleSkip})
		if err != nil {
			return RunResult{}, err
		}
		st = res.Stats
	} else {
		if r.ss == nil {
			r.ss = sscore.New(r.k.Cfg, im, sscore.Options{})
		} else {
			r.ss.Reset(im)
		}
		res, err := r.ss.Run(sscore.Options{MaxCycles: runCycleCap, NoIdleSkip: r.o.NoIdleSkip})
		if err != nil {
			return RunResult{}, err
		}
		st = res.Stats
	}
	elapsed := time.Since(start)
	if err := st.Check(r.k.Cfg); err != nil {
		return RunResult{}, err
	}
	r.runs++
	return RunResult{Stats: st, Elapsed: elapsed}, nil
}

// BenchIters is the Dhrystone iteration count the KIPS benchmarks and
// cmd/simbench run: long enough that steady state dominates (a few
// million simulated cycles), short enough for -benchtime=1x CI runs.
const BenchIters = 300

// BenchWorkload is the workload the KIPS benchmarks measure.
const BenchWorkload = workloads.Dhrystone

// MeasureKIPS builds the benchmark workload and runs it `count` times on
// the kernel, returning the best (highest) KIPS observed and the retired
// instruction count. Best-of-N is the standard noise reducer for
// throughput measurements on shared CI machines.
func MeasureKIPS(k Kernel, count int) (kips float64, retired uint64, err error) {
	return MeasureKIPSWith(k, count, Options{})
}

// MeasureKIPSWith is MeasureKIPS with an explicit measurement mode.
func MeasureKIPSWith(k Kernel, count int, o Options) (kips float64, retired uint64, err error) {
	im, err := BuildImage(k, BenchWorkload, BenchIters)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < count; i++ {
		res, err := RunWith(k, im, o)
		if err != nil {
			return 0, 0, err
		}
		retired = res.Stats.Retired
		if v := res.KIPS(); v > kips {
			kips = v
		}
	}
	return kips, retired, nil
}

// MeasureBatchKIPS measures throughput in batch mode: `count` runs of
// the benchmark workload multiplexed through one Runner-reused core
// (the first, core-constructing run is still timed). Best-of-N, like
// MeasureKIPS.
func MeasureBatchKIPS(k Kernel, count int) (kips float64, retired uint64, err error) {
	im, err := BuildImage(k, BenchWorkload, BenchIters)
	if err != nil {
		return 0, 0, err
	}
	r := NewRunner(k, Options{})
	for i := 0; i < count; i++ {
		res, err := r.Run(im)
		if err != nil {
			return 0, 0, err
		}
		retired = res.Stats.Retired
		if v := res.KIPS(); v > kips {
			kips = v
		}
	}
	return kips, retired, nil
}
