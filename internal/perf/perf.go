package perf

import (
	"fmt"
	"time"

	"straight/internal/bench"
	"straight/internal/cores/cgcore"
	"straight/internal/cores/engine"
	"straight/internal/cores/sscore"
	"straight/internal/cores/straightcore"
	"straight/internal/program"
	"straight/internal/uarch"
	"straight/internal/workloads"
)

// CoreKind selects which cycle core a kernel runs on.
type CoreKind string

const (
	// KindStraight is the STRAIGHT core (distance operands).
	KindStraight CoreKind = "straight"
	// KindSS is the superscalar baseline (RMT/free-list rename).
	KindSS CoreKind = "ss"
	// KindCG is the coarse-grain OoO comparison core (SS rename,
	// block-granular issue; arXiv 1606.01607).
	KindCG CoreKind = "cg"
)

// Kernel names one simulated machine: a core kind at a width.
type Kernel struct {
	// Name identifies the kernel in benchmark output and JSON baselines
	// (e.g. "straight-4way").
	Name string
	// Kind selects the cycle core.
	Kind CoreKind
	// Cfg is the Table I model configuration.
	Cfg uarch.Config
}

// Kernels returns the golden-pinned machines: both original cores at
// both widths, in fixed order. The JSON baseline and golden_stats.json
// key on Name; this list must not change (golden_stats.json is embedded
// and its bytes feed VersionSalt). Kernels added later go in
// ExtraKernels with their own golden file.
func Kernels() []Kernel {
	return []Kernel{
		{Name: "straight-4way", Kind: KindStraight, Cfg: uarch.Straight4Way()},
		{Name: "straight-2way", Kind: KindStraight, Cfg: uarch.Straight2Way()},
		{Name: "ss-4way", Kind: KindSS, Cfg: uarch.SS4Way()},
		{Name: "ss-2way", Kind: KindSS, Cfg: uarch.SS2Way()},
		{Name: "straight-4way-membound", Kind: KindStraight, Cfg: uarch.Straight4WayMemBound()},
		{Name: "ss-4way-membound", Kind: KindSS, Cfg: uarch.SS4WayMemBound()},
	}
}

// ExtraKernels returns machines added after the golden corpus was
// pinned. They are benchmarked and golden-tested like Kernels(), but
// against a separate, non-embedded golden file
// (testdata/golden_stats_extra.json) so the embedded corpus — and hence
// VersionSalt — stays byte-stable.
func ExtraKernels() []Kernel {
	return []Kernel{
		{Name: "cg-4way", Kind: KindCG, Cfg: uarch.CG4Way()},
		{Name: "cg-2way", Kind: KindCG, Cfg: uarch.CG2Way()},
	}
}

// AllKernels returns Kernels() plus ExtraKernels(), in that order.
func AllKernels() []Kernel {
	return append(Kernels(), ExtraKernels()...)
}

// KernelByName returns the kernel with the given Name (searching the
// golden-pinned and extra lists).
func KernelByName(name string) (Kernel, error) {
	for _, k := range AllKernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("perf: unknown kernel %q", name)
}

// BuildImage compiles the workload for the kernel's ISA (cached by
// internal/bench's singleflight build cache). STRAIGHT images use the
// RE+ compiler at the paper's distance bound, matching the headline
// figures; the rename-based kernels (SS, CG) share the RISC-V build.
func BuildImage(k Kernel, w workloads.Workload, iters int) (*program.Image, error) {
	if k.Kind == KindStraight {
		return bench.BuildSTRAIGHT(w, iters, k.Cfg.MaxDistance, bench.ModeREP)
	}
	return bench.BuildRISCV(w, iters)
}

// Core is the interface every cycle core's thin wrapper satisfies (they
// all front the same engine); perf drives whichever kind the kernel
// names through it.
type Core interface {
	Run(opts engine.Options) (*engine.Result, error)
	RunCycles(opts engine.Options, n int64) error
	Reset(img *program.Image)
	Exited() bool
	Stats() uarch.Stats
}

// NewCore constructs the kernel's core over the image.
func NewCore(k Kernel, im *program.Image, opts engine.Options) Core {
	switch k.Kind {
	case KindStraight:
		return straightcore.New(k.Cfg, im, opts)
	case KindCG:
		return cgcore.New(k.Cfg, im, opts)
	default:
		return sscore.New(k.Cfg, im, opts)
	}
}

// RunResult is one measured simulation.
type RunResult struct {
	Stats   uarch.Stats
	Elapsed time.Duration
}

// KIPS returns simulated kilo-instructions retired per host second.
func (r RunResult) KIPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Retired) / 1000 / r.Elapsed.Seconds()
}

const runCycleCap = 2_000_000_000

// Options selects a measurement mode.
type Options struct {
	// NoIdleSkip disables the event-driven idle-cycle fast path, forcing
	// strict cycle-by-cycle stepping. Stats are bit-identical either way;
	// only wall-clock time changes.
	NoIdleSkip bool
}

// Run simulates the image to completion on the kernel's core with the
// tracer off (the non-traced fast path the benchmarks measure) and
// returns the counters plus wall-clock time.
func Run(k Kernel, im *program.Image) (RunResult, error) {
	return RunWith(k, im, Options{})
}

// RunWith is Run with an explicit measurement mode.
func RunWith(k Kernel, im *program.Image, o Options) (RunResult, error) {
	start := time.Now()
	res, err := NewCore(k, im, engine.Options{}).
		Run(engine.Options{MaxCycles: runCycleCap, NoIdleSkip: o.NoIdleSkip})
	if err != nil {
		return RunResult{}, err
	}
	elapsed := time.Since(start)
	if err := res.Stats.Check(k.Cfg); err != nil {
		return RunResult{}, err
	}
	return RunResult{Stats: res.Stats, Elapsed: elapsed}, nil
}

// Runner multiplexes many runs through one reusable core: the first Run
// constructs it, later Runs recycle it with Core.Reset, so batched
// experiments pay construction cost once per configuration. Stats from a
// recycled core are bit-identical to a fresh core's (the Reset contract,
// DESIGN.md §12). Not safe for concurrent use.
type Runner struct {
	k    Kernel
	o    Options
	core Core
	runs int
}

// NewRunner returns a batch runner for the kernel. No core is built
// until the first Run.
func NewRunner(k Kernel, o Options) *Runner {
	return &Runner{k: k, o: o}
}

// Runs reports how many simulations this runner has executed.
func (r *Runner) Runs() int { return r.runs }

// Run simulates the image to completion, reusing the core from the
// previous call when there was one.
func (r *Runner) Run(im *program.Image) (RunResult, error) {
	start := time.Now()
	if r.core == nil {
		r.core = NewCore(r.k, im, engine.Options{})
	} else {
		r.core.Reset(im)
	}
	res, err := r.core.Run(engine.Options{MaxCycles: runCycleCap, NoIdleSkip: r.o.NoIdleSkip})
	if err != nil {
		return RunResult{}, err
	}
	elapsed := time.Since(start)
	if err := res.Stats.Check(r.k.Cfg); err != nil {
		return RunResult{}, err
	}
	r.runs++
	return RunResult{Stats: res.Stats, Elapsed: elapsed}, nil
}

// BenchIters is the Dhrystone iteration count the KIPS benchmarks and
// cmd/simbench run: long enough that steady state dominates (a few
// million simulated cycles), short enough for -benchtime=1x CI runs.
const BenchIters = 300

// BenchWorkload is the workload the KIPS benchmarks measure.
const BenchWorkload = workloads.Dhrystone

// MeasureKIPS builds the benchmark workload and runs it `count` times on
// the kernel, returning the best (highest) KIPS observed and the retired
// instruction count. Best-of-N is the standard noise reducer for
// throughput measurements on shared CI machines.
func MeasureKIPS(k Kernel, count int) (kips float64, retired uint64, err error) {
	return MeasureKIPSWith(k, count, Options{})
}

// MeasureKIPSWith is MeasureKIPS with an explicit measurement mode.
func MeasureKIPSWith(k Kernel, count int, o Options) (kips float64, retired uint64, err error) {
	im, err := BuildImage(k, BenchWorkload, BenchIters)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < count; i++ {
		res, err := RunWith(k, im, o)
		if err != nil {
			return 0, 0, err
		}
		retired = res.Stats.Retired
		if v := res.KIPS(); v > kips {
			kips = v
		}
	}
	return kips, retired, nil
}

// MeasureBatchKIPS measures throughput in batch mode: `count` runs of
// the benchmark workload multiplexed through one Runner-reused core
// (the first, core-constructing run is still timed). Best-of-N, like
// MeasureKIPS.
func MeasureBatchKIPS(k Kernel, count int) (kips float64, retired uint64, err error) {
	im, err := BuildImage(k, BenchWorkload, BenchIters)
	if err != nil {
		return 0, 0, err
	}
	r := NewRunner(k, Options{})
	for i := 0; i < count; i++ {
		res, err := r.Run(im)
		if err != nil {
			return 0, 0, err
		}
		retired = res.Stats.Retired
		if v := res.KIPS(); v > kips {
			kips = v
		}
	}
	return kips, retired, nil
}
