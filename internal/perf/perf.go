// Package perf is the simulation-kernel performance harness: it measures
// host-side simulator throughput in KIPS (kilo simulated instructions
// retired per host second), enforces the steady-state allocation budget
// of the cycle cores (zero heap allocations per simulated cycle on the
// non-traced path), and pins the cycle-level results of both cores with
// golden-stats equality tests so kernel optimizations can never silently
// shift the paper's figures.
//
// The same harness backs three consumers:
//
//   - go test -bench=KernelKIPS ./internal/perf  (interactive numbers)
//   - cmd/simbench, which writes/compares BENCH_simkernel.json (CI guard)
//   - the golden and allocation tests in this package (tier-1 suite)
package perf

import (
	"fmt"
	"time"

	"straight/internal/bench"
	"straight/internal/cores/sscore"
	"straight/internal/cores/straightcore"
	"straight/internal/program"
	"straight/internal/uarch"
	"straight/internal/workloads"
)

// Kernel names one simulated machine: a core kind at a width.
type Kernel struct {
	// Name identifies the kernel in benchmark output and JSON baselines
	// (e.g. "straight-4way").
	Name string
	// Straight selects the STRAIGHT core; false selects the superscalar.
	Straight bool
	// Cfg is the Table I model configuration.
	Cfg uarch.Config
}

// Kernels returns the benchmarked machines: both cores at both widths,
// in fixed order (the JSON baseline and the golden files key on Name).
func Kernels() []Kernel {
	return []Kernel{
		{Name: "straight-4way", Straight: true, Cfg: uarch.Straight4Way()},
		{Name: "straight-2way", Straight: true, Cfg: uarch.Straight2Way()},
		{Name: "ss-4way", Straight: false, Cfg: uarch.SS4Way()},
		{Name: "ss-2way", Straight: false, Cfg: uarch.SS2Way()},
	}
}

// KernelByName returns the kernel with the given Name.
func KernelByName(name string) (Kernel, error) {
	for _, k := range Kernels() {
		if k.Name == name {
			return k, nil
		}
	}
	return Kernel{}, fmt.Errorf("perf: unknown kernel %q", name)
}

// BuildImage compiles the workload for the kernel's ISA (cached by
// internal/bench's singleflight build cache). STRAIGHT images use the
// RE+ compiler at the paper's distance bound, matching the headline
// figures.
func BuildImage(k Kernel, w workloads.Workload, iters int) (*program.Image, error) {
	if k.Straight {
		return bench.BuildSTRAIGHT(w, iters, k.Cfg.MaxDistance, bench.ModeREP)
	}
	return bench.BuildRISCV(w, iters)
}

// RunResult is one measured simulation.
type RunResult struct {
	Stats   uarch.Stats
	Elapsed time.Duration
}

// KIPS returns simulated kilo-instructions retired per host second.
func (r RunResult) KIPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Stats.Retired) / 1000 / r.Elapsed.Seconds()
}

const runCycleCap = 2_000_000_000

// Run simulates the image to completion on the kernel's core with the
// tracer off (the non-traced fast path the benchmarks measure) and
// returns the counters plus wall-clock time.
func Run(k Kernel, im *program.Image) (RunResult, error) {
	start := time.Now()
	var st uarch.Stats
	if k.Straight {
		res, err := straightcore.New(k.Cfg, im, straightcore.Options{}).
			Run(straightcore.Options{MaxCycles: runCycleCap})
		if err != nil {
			return RunResult{}, err
		}
		st = res.Stats
	} else {
		res, err := sscore.New(k.Cfg, im, sscore.Options{}).
			Run(sscore.Options{MaxCycles: runCycleCap})
		if err != nil {
			return RunResult{}, err
		}
		st = res.Stats
	}
	elapsed := time.Since(start)
	if err := st.Check(k.Cfg); err != nil {
		return RunResult{}, err
	}
	return RunResult{Stats: st, Elapsed: elapsed}, nil
}

// BenchIters is the Dhrystone iteration count the KIPS benchmarks and
// cmd/simbench run: long enough that steady state dominates (a few
// million simulated cycles), short enough for -benchtime=1x CI runs.
const BenchIters = 300

// BenchWorkload is the workload the KIPS benchmarks measure.
const BenchWorkload = workloads.Dhrystone

// MeasureKIPS builds the benchmark workload and runs it `count` times on
// the kernel, returning the best (highest) KIPS observed and the retired
// instruction count. Best-of-N is the standard noise reducer for
// throughput measurements on shared CI machines.
func MeasureKIPS(k Kernel, count int) (kips float64, retired uint64, err error) {
	im, err := BuildImage(k, BenchWorkload, BenchIters)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < count; i++ {
		res, err := Run(k, im)
		if err != nil {
			return 0, 0, err
		}
		retired = res.Stats.Retired
		if v := res.KIPS(); v > kips {
			kips = v
		}
	}
	return kips, retired, nil
}
