//go:build !race

package perf

// raceEnabled reports whether the race detector is active. The
// steady-state allocation tests skip under -race: race instrumentation
// inserts its own allocations, so a zero-allocation budget is only
// meaningful on uninstrumented builds.
const raceEnabled = false
