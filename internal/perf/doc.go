// Package perf is the simulation-kernel performance harness: it measures
// host-side simulator throughput in KIPS (kilo simulated instructions
// retired per host second), enforces the steady-state allocation budget
// of the cycle cores (zero heap allocations per simulated cycle on the
// non-traced path), and pins the cycle-level results of both cores with
// golden-stats equality tests so kernel optimizations can never silently
// shift the paper's figures.
//
// # Kernels and workloads
//
// A Kernel names one simulated machine: a core kind (STRAIGHT or the
// superscalar baseline) at a Table I configuration. Kernels() returns
// the benchmarked set in fixed order — both cores at both widths, plus
// the "-membound" variants, which shrink the caches and stretch memory
// latency until runs are dominated by drained-pipeline miss windows
// (the regime the event-driven idle-skip fast path targets, DESIGN.md
// §12). All throughput measurements run BenchWorkload for BenchIters
// iterations so numbers are comparable across kernels and commits.
//
// # Measurement modes
//
// Three run modes share one harness, differing only in how the core is
// obtained and whether the idle-skip fast path is armed:
//
//   - Run / MeasureKIPS: fresh core per run, idle skipping on (the
//     default production configuration).
//   - RunWith / MeasureKIPSWith with Options{NoIdleSkip: true}: fresh
//     core per run, strict cycle-by-cycle stepping. The skip-on and
//     skip-off modes retire the same instructions in the same number of
//     simulated cycles — uarch.Stats are bit-identical by construction
//     (see DESIGN.md §12) — so the KIPS ratio between them is pure
//     kernel speedup, not a model change.
//   - Runner / MeasureBatchKIPS: one core constructed lazily and
//     recycled with Core.Reset between runs, so batched experiments
//     (cmd/experiments, cmd/straight-fuzz) pay construction and warmup
//     allocation once per configuration instead of once per run.
//
// # Consumers
//
// The same harness backs three consumers:
//
//   - go test -bench=KernelKIPS ./internal/perf  (interactive numbers)
//   - cmd/simbench, which writes/compares BENCH_simkernel.json (CI guard,
//     including the skip-off and batch modes)
//   - the golden and allocation tests in this package (tier-1 suite)
package perf
