package perf

import "testing"

// TestVersionSaltTracksGoldenStats pins the salt's contract: it is
// deterministic, non-trivial, and changes whenever the golden stats
// bytes change (the property the result store's invalidation relies
// on).
func TestVersionSaltTracksGoldenStats(t *testing.T) {
	s1 := VersionSalt()
	if s1 == 0 {
		t.Fatal("salt is zero")
	}
	if s2 := VersionSalt(); s2 != s1 {
		t.Fatalf("salt not deterministic: %x vs %x", s1, s2)
	}
	saved := goldenStats
	defer func() { goldenStats = saved }()
	mutated := append([]byte{}, saved...)
	mutated[len(mutated)/2] ^= 0x01
	goldenStats = mutated
	if s3 := VersionSalt(); s3 == s1 {
		t.Fatal("salt ignored a golden-stats change")
	}
}
