//go:build race

package perf

// raceEnabled reports whether the race detector is active (see
// race_off.go).
const raceEnabled = true
