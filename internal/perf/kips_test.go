package perf

import (
	"testing"
)

// BenchmarkKernelKIPS measures end-to-end simulator throughput of each
// cycle core in simulated kilo-instructions retired per host second.
// One b.N iteration is one complete simulation of the benchmark
// workload, so -benchtime=1x runs each kernel exactly once (the CI mode;
// see .github/workflows/ci.yml and scripts/bench.sh).
func BenchmarkKernelKIPS(b *testing.B) {
	for _, k := range Kernels() {
		k := k
		b.Run(k.Name, func(b *testing.B) {
			im, err := BuildImage(k, BenchWorkload, BenchIters)
			if err != nil {
				b.Fatal(err)
			}
			var retired uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := Run(k, im)
				if err != nil {
					b.Fatal(err)
				}
				retired = res.Stats.Retired
			}
			elapsed := b.Elapsed()
			if elapsed > 0 {
				kips := float64(retired) * float64(b.N) / 1000 / elapsed.Seconds()
				b.ReportMetric(kips, "KIPS")
				b.ReportMetric(float64(retired), "insns/run")
			}
		})
	}
}
