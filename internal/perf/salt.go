package perf

import (
	_ "embed"
)

// goldenStats is the compiled-in golden cycle-accurate statistics file
// (see golden_test.go): a pinned uarch.Stats snapshot, exit code and
// retirement-stream hash for every (kernel, workload) pair. Any change
// to cycle-level simulator behavior — scheduling order, stall
// attribution, recovery cost, compiler output — forces this file to be
// re-recorded (go test ./internal/perf -update), so its bytes are a
// fingerprint of simulator behavior.
//
//go:embed testdata/golden_stats.json
var goldenStats []byte

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// saltSchema separates salt epochs that the golden file cannot see:
// bump it manually for behavioral changes invisible to the golden
// cycle stats (e.g. a functional-emulator-only statistics fix) or when
// the result-value encoding in internal/bench changes shape.
const saltSchema = "straight-results-v1"

// VersionSalt derives the simulator-version salt for the persistent
// result store (internal/resultstore): an FNV-1a hash of the embedded
// golden statistics plus the manual schema epoch. Results recorded
// under a different salt are invalidated wholesale on open, so a store
// can never serve numbers produced by a behaviorally different
// simulator build.
func VersionSalt() uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(saltSchema); i++ {
		h ^= uint64(saltSchema[i])
		h *= fnvPrime
	}
	for _, b := range goldenStats {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}
