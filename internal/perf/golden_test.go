package perf

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"straight/internal/cores/engine"
	"straight/internal/uarch"
	"straight/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_stats.json from the current simulators")

// goldenEntry pins one (kernel, workload) simulation: every counter in
// uarch.Stats, the exit code, and an order-sensitive FNV-1a hash of the
// full retirement stream (PC, value, store-ness, address of every
// retired instruction). Any change to cycle-level behavior — scheduling
// order, stall attribution, recovery cost — shows up here.
type goldenEntry struct {
	Stats      uarch.Stats `json:"stats"`
	ExitCode   int32       `json:"exit_code"`
	RetireHash uint64      `json:"retire_hash"`
}

// goldenIters keeps the golden runs fast (a few hundred ms total) while
// still exercising recovery, LSQ disambiguation and both predictors.
var goldenIters = map[workloads.Workload]int{
	workloads.Dhrystone: 30,
	workloads.CoreMark:  1,
}

// fnvOffset and fnvPrime live in salt.go (VersionSalt shares them).

func fnvMix(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

func retireHasher(h *uint64) uarch.RetireFn {
	return func(r uarch.Retirement) error {
		x := fnvMix(*h, uint64(r.Seq))
		x = fnvMix(x, uint64(r.PC))
		if r.HasValue {
			x = fnvMix(x, uint64(r.Value)+1)
		}
		x = fnvMix(x, uint64(uint16(r.LogReg)))
		if r.IsStore {
			x = fnvMix(x, uint64(r.MemAddr)+1)
		}
		*h = x
		return nil
	}
}

func runGolden(t *testing.T, k Kernel, w workloads.Workload) goldenEntry {
	t.Helper()
	im, err := BuildImage(k, w, goldenIters[w])
	if err != nil {
		t.Fatalf("build %s/%s: %v", k.Name, w, err)
	}
	hash := uint64(fnvOffset)
	opts := engine.Options{MaxCycles: runCycleCap, CrossValidate: true, RetireFn: retireHasher(&hash)}
	res, err := NewCore(k, im, opts).Run(opts)
	if err != nil {
		t.Fatalf("run %s/%s: %v", k.Name, w, err)
	}
	entry := goldenEntry{Stats: res.Stats, ExitCode: res.ExitCode}
	if err := entry.Stats.Check(k.Cfg); err != nil {
		t.Fatalf("%s/%s: %v", k.Name, w, err)
	}
	entry.RetireHash = hash
	return entry
}

func goldenPath() string { return filepath.Join("testdata", "golden_stats.json") }

// TestGoldenStats runs both cores on both workloads at 2-way and 4-way
// and asserts the complete uarch.Stats, the exit code, and the
// retirement-stream hash are exactly equal to the checked-in golden
// values. This is the proof obligation of the allocation-free kernel
// rewrite: host-side data-structure changes must not shift a single
// reported cycle. Regenerate (only for intentional model changes) with:
//
//	go test ./internal/perf -run TestGoldenStats -update
func TestGoldenStats(t *testing.T) {
	got := map[string]goldenEntry{}
	for _, k := range Kernels() {
		for _, w := range workloads.All {
			got[fmt.Sprintf("%s/%s", k.Name, w)] = runGolden(t, k, w)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", goldenPath(), len(got))
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := map[string]goldenEntry{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, current run produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from current run", key)
			continue
		}
		if g.ExitCode != w.ExitCode {
			t.Errorf("%s: exit code %d != golden %d", key, g.ExitCode, w.ExitCode)
		}
		if g.RetireHash != w.RetireHash {
			t.Errorf("%s: retirement stream hash %#x != golden %#x", key, g.RetireHash, w.RetireHash)
		}
		if !reflect.DeepEqual(g.Stats, w.Stats) {
			t.Errorf("%s: stats diverge from golden:\n%s", key, diffStats(w.Stats, g.Stats))
		}
	}
}

// TestGoldenStatsExtra pins the kernels added after the embedded golden
// corpus froze (ExtraKernels: the CG-OoO comparison core) against their
// own golden file. The file is deliberately NOT //go:embed-ded: adding
// or re-recording extra kernels must not move perf.VersionSalt, which
// fingerprints only golden_stats.json. Regenerate with:
//
//	go test ./internal/perf -run TestGoldenStatsExtra -update
func TestGoldenStatsExtra(t *testing.T) {
	path := filepath.Join("testdata", "golden_stats_extra.json")
	got := map[string]goldenEntry{}
	for _, k := range ExtraKernels() {
		for _, w := range workloads.All {
			got[fmt.Sprintf("%s/%s", k.Name, w)] = runGolden(t, k, w)
		}
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d entries)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	want := map[string]goldenEntry{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden file has %d entries, current run produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from current run", key)
			continue
		}
		if g.ExitCode != w.ExitCode {
			t.Errorf("%s: exit code %d != golden %d", key, g.ExitCode, w.ExitCode)
		}
		if g.RetireHash != w.RetireHash {
			t.Errorf("%s: retirement stream hash %#x != golden %#x", key, g.RetireHash, w.RetireHash)
		}
		if !reflect.DeepEqual(g.Stats, w.Stats) {
			t.Errorf("%s: stats diverge from golden:\n%s", key, diffStats(w.Stats, g.Stats))
		}
	}
}

// diffStats renders a per-field diff of two Stats values so a golden
// failure names the exact counters that moved.
func diffStats(want, got uarch.Stats) string {
	wv := reflect.ValueOf(want)
	gv := reflect.ValueOf(got)
	ty := wv.Type()
	out := ""
	for i := 0; i < ty.NumField(); i++ {
		w, g := wv.Field(i), gv.Field(i)
		if !reflect.DeepEqual(w.Interface(), g.Interface()) {
			out += fmt.Sprintf("  %s: golden %v, got %v\n", ty.Field(i).Name, w.Interface(), g.Interface())
		}
	}
	if out == "" {
		out = "  (no field differences)\n"
	}
	return out
}
