package perf

import (
	"os"
	"path/filepath"
	"runtime"
	"time"

	"straight/internal/resultstore"
	"straight/internal/sampling"
	"straight/internal/workloads"
)

// SampledBenchWorkload is the workload the sampled-throughput benchmark
// measures: the long-running tier, where fast-forward dominates and
// sampling pays off. (On the short BenchWorkload the detailed windows
// would cover most of the program and the "speedup" would measure
// nothing.)
const SampledBenchWorkload = workloads.DhrystoneLong

// SampledBenchIters matches BenchIters; DhrystoneLong scales its
// iteration count by workloads.LongScale internally, so the sampled
// benchmark simulates 20× the instructions of the detailed benchmark.
const SampledBenchIters = BenchIters

// sampledReps is how many fully-cached runs each timed measurement
// amortizes over. Steady-state runs reduce to hashing checkpoints and
// decoding stored windows (~a millisecond), so a single run's wall
// time is mostly timer and allocator noise; a batch — preceded by a
// forced GC so collection pauses land between batches, not inside
// them — gives the 15% regression guard a stable number.
const sampledReps = 40

// MeasureSampledKIPS measures effective sampled-simulation throughput
// in the sweep steady state: the long benchmark workload under
// sampling.DefaultPlan against a result store. One untimed cold run
// seeds the store (checkpoint sequence + every window); each of the
// `count` timed measurements then amortizes sampledReps fully-cached
// runs — the regime a re-run experiment or regression sweep lives in,
// where the entire run (fast-forward included) reduces to hashing.
// Returns the best batch's effective KIPS (total program instructions
// over per-run wall time) and the program's retired-instruction count.
// Dividing by the same kernel's MeasureKIPS result gives the effective
// steady-state speedup over full detailed simulation; the cold
// first-run speedup (~4-6×) is reported by the experiments binary's
// sampled-vs-full section instead.
func MeasureSampledKIPS(k Kernel, count int) (kips float64, retired uint64, err error) {
	dir, err := os.MkdirTemp("", "straight-sampled-bench-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	store, err := resultstore.Open(filepath.Join(dir, "windows.store"), resultstore.Options{})
	if err != nil {
		return 0, 0, err
	}
	defer store.Close()

	im, err := BuildImage(k, SampledBenchWorkload, SampledBenchIters)
	if err != nil {
		return 0, 0, err
	}
	tgt, err := sampling.NewTarget(string(k.Kind), k.Cfg, im)
	if err != nil {
		return 0, 0, err
	}
	opts := sampling.Options{Store: store}
	rep, err := sampling.Run(tgt, sampling.DefaultPlan(), opts)
	if err != nil {
		return 0, 0, err
	}
	retired = rep.TotalInsts

	for i := 0; i < count; i++ {
		runtime.GC()
		start := time.Now()
		for j := 0; j < sampledReps; j++ {
			if _, err := sampling.Run(tgt, sampling.DefaultPlan(), opts); err != nil {
				return 0, 0, err
			}
		}
		wall := time.Since(start).Seconds()
		if wall <= 0 {
			continue
		}
		if v := float64(retired) * sampledReps / wall / 1000; v > kips {
			kips = v
		}
	}
	return kips, retired, nil
}
