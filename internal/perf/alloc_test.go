package perf

import (
	"testing"

	"straight/internal/cores/engine"
)

// allocWarmupCycles runs the simulation deep into its main loop before
// measuring: pools, rings, the sparse memory's pages and the cache
// hierarchy are all at steady-state capacity by then.
const allocWarmupCycles = 200_000

// allocMeasureCycles is the per-sample window AllocsPerRun measures.
const allocMeasureCycles = 5_000

// allocIters sizes the workload so it cannot exit inside the warmup plus
// the eleven AllocsPerRun sample windows, even at 4-way IPC.
const allocIters = 3 * BenchIters

// runAllocBudget asserts the kernel's per-cycle step path performs zero
// heap allocations in steady state on the non-traced path. This is the
// enforcement half of the allocation-free kernel: any regression (a map
// in the issue loop, an escaping closure, slice append churn, a policy
// hook argument escaping through the interface) fails here before it
// shows up as a KIPS regression in CI.
func runAllocBudget(t *testing.T, k Kernel) {
	t.Helper()
	im, err := BuildImage(k, BenchWorkload, allocIters)
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{MaxCycles: runCycleCap}
	c := NewCore(k, im, opts)
	if err := c.RunCycles(opts, allocWarmupCycles); err != nil {
		t.Fatal(err)
	}
	if c.Exited() {
		t.Fatalf("workload exited during warmup (%d cycles); grow BenchIters", allocWarmupCycles)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := c.RunCycles(opts, allocMeasureCycles); err != nil {
			t.Fatal(err)
		}
	})
	if c.Exited() {
		t.Fatalf("workload exited during measurement; grow BenchIters")
	}
	if allocs != 0 {
		t.Errorf("%s: %.1f heap allocations per %d steady-state cycles, want 0",
			k.Name, allocs, allocMeasureCycles)
	}
}

// allocKernels filters AllKernels down to one kind.
func allocKernels(t *testing.T, kind CoreKind) {
	if raceEnabled {
		t.Skip("allocation budgets are not meaningful under the race detector")
	}
	for _, k := range AllKernels() {
		if k.Kind != kind {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) { runAllocBudget(t, k) })
	}
}

// TestSteadyStateAllocsStraight enforces the zero-allocation budget on
// the STRAIGHT policy at both widths.
func TestSteadyStateAllocsStraight(t *testing.T) { allocKernels(t, KindStraight) }

// TestSteadyStateAllocsSS is the same budget for the superscalar
// policy: rename, free-list and ROB-walk machinery included.
func TestSteadyStateAllocsSS(t *testing.T) { allocKernels(t, KindSS) }

// TestSteadyStateAllocsCG is the same budget for the coarse-grain
// policy: block gating must not allocate either.
func TestSteadyStateAllocsCG(t *testing.T) { allocKernels(t, KindCG) }
