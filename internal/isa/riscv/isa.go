// Package riscv implements the RV32IM instruction set used by the paper's
// superscalar counterpart ("SS" models, §V-A): standard RISC-V 32-bit
// integer + multiply/divide, with the standard R/I/S/B/U/J encodings.
// Floating point is intentionally absent (disabled in the evaluation).
package riscv

import "fmt"

// Op enumerates decoded RV32IM operations.
type Op uint8

const (
	ILLEGAL Op = iota

	LUI
	AUIPC
	JAL
	JALR

	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	LB
	LH
	LW
	LBU
	LHU
	SB
	SH
	SW

	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	ECALL
	EBREAK
	FENCE

	numOps
)

// NumOps is the number of defined operations (including ILLEGAL).
const NumOps = int(numOps)

var opNames = [numOps]string{
	ILLEGAL: "illegal",
	LUI:     "lui", AUIPC: "auipc", JAL: "jal", JALR: "jalr",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	LB: "lb", LH: "lh", LW: "lw", LBU: "lbu", LHU: "lhu",
	SB: "sb", SH: "sh", SW: "sw",
	ADDI: "addi", SLTI: "slti", SLTIU: "sltiu", XORI: "xori", ORI: "ori", ANDI: "andi",
	SLLI: "slli", SRLI: "srli", SRAI: "srai",
	ADD: "add", SUB: "sub", SLL: "sll", SLT: "slt", SLTU: "sltu",
	XOR: "xor", SRL: "srl", SRA: "sra", OR: "or", AND: "and",
	MUL: "mul", MULH: "mulh", MULHSU: "mulhsu", MULHU: "mulhu",
	DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
	ECALL: "ecall", EBREAK: "ebreak", FENCE: "fence",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class mirrors the execution classes used by the pipeline models.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch
	ClassJump
	ClassSys
)

// Class returns the execution class of the operation.
//
//lint:hotpath
func (o Op) Class() Class {
	switch o {
	case MUL, MULH, MULHSU, MULHU:
		return ClassMul
	case DIV, DIVU, REM, REMU:
		return ClassDiv
	case LB, LH, LW, LBU, LHU:
		return ClassLoad
	case SB, SH, SW:
		return ClassStore
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return ClassBranch
	case JAL, JALR:
		return ClassJump
	case ECALL, EBREAK:
		return ClassSys
	default:
		return ClassALU
	}
}

// Inst is a decoded RV32IM instruction. Imm is the fully sign-extended
// immediate with its format-specific scaling already applied (byte offsets
// for branches/jumps, the shifted value for LUI/AUIPC).
type Inst struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int32
}

// ReadsRs1 reports whether the instruction reads Rs1.
//
//lint:hotpath
func (i Inst) ReadsRs1() bool {
	switch i.Op {
	case LUI, AUIPC, JAL, ECALL, EBREAK, FENCE, ILLEGAL:
		return false
	}
	return true
}

// ReadsRs2 reports whether the instruction reads Rs2.
//
//lint:hotpath
func (i Inst) ReadsRs2() bool {
	switch i.Op.Class() {
	case ClassStore, ClassBranch:
		return true
	}
	switch i.Op {
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		return true
	}
	return false
}

// WritesRd reports whether the instruction writes a destination register
// (x0 writes are architectural no-ops but still "write" structurally).
//
//lint:hotpath
func (i Inst) WritesRd() bool {
	switch i.Op.Class() {
	case ClassStore, ClassBranch:
		return false
	}
	switch i.Op {
	case ECALL, EBREAK, FENCE, ILLEGAL:
		return false
	}
	return true
}

// IsControl reports whether the instruction can redirect the PC.
//
//lint:hotpath
func (i Inst) IsControl() bool {
	c := i.Op.Class()
	return c == ClassBranch || c == ClassJump
}

// RegNames is the ABI register naming (x0..x31).
var RegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// ABI register numbers used by the toolchain.
const (
	RegZero = 0
	RegRA   = 1
	RegSP   = 2
	RegT0   = 5
	RegT1   = 6
	RegT2   = 7
	RegS0   = 8
	RegS1   = 9
	RegA0   = 10
	RegA1   = 11
	RegA7   = 17
	RegT3   = 28
	RegT4   = 29
	RegT5   = 30
	RegT6   = 31
)

func (i Inst) String() string {
	switch i.Op.Class() {
	case ClassBranch:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegNames[i.Rs1], RegNames[i.Rs2], i.Imm)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegNames[i.Rs2], i.Imm, RegNames[i.Rs1])
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegNames[i.Rd], i.Imm, RegNames[i.Rs1])
	}
	switch i.Op {
	case LUI, AUIPC:
		return fmt.Sprintf("%s %s, %#x", i.Op, RegNames[i.Rd], uint32(i.Imm)>>12)
	case JAL:
		return fmt.Sprintf("jal %s, %d", RegNames[i.Rd], i.Imm)
	case JALR:
		return fmt.Sprintf("jalr %s, %d(%s)", RegNames[i.Rd], i.Imm, RegNames[i.Rs1])
	case ECALL, EBREAK, FENCE, ILLEGAL:
		return i.Op.String()
	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegNames[i.Rd], RegNames[i.Rs1], i.Imm)
	}
	return fmt.Sprintf("%s %s, %s, %s", i.Op, RegNames[i.Rd], RegNames[i.Rs1], RegNames[i.Rs2])
}
