package riscv

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Inst{
		{Op: LUI, Rd: 5, Imm: 0x12345000},
		{Op: AUIPC, Rd: 1, Imm: -4096},
		{Op: JAL, Rd: 1, Imm: 2048},
		{Op: JAL, Rd: 0, Imm: -4},
		{Op: JALR, Rd: 1, Rs1: 5, Imm: -2048},
		{Op: BEQ, Rs1: 1, Rs2: 2, Imm: -4096},
		{Op: BNE, Rs1: 31, Rs2: 30, Imm: 4094},
		{Op: BLT, Rs1: 3, Rs2: 4, Imm: 8},
		{Op: BGEU, Rs1: 3, Rs2: 4, Imm: -8},
		{Op: LW, Rd: 7, Rs1: 2, Imm: 2047},
		{Op: LB, Rd: 7, Rs1: 2, Imm: -2048},
		{Op: LHU, Rd: 9, Rs1: 8, Imm: 0},
		{Op: SW, Rs1: 2, Rs2: 7, Imm: -4},
		{Op: SB, Rs1: 2, Rs2: 7, Imm: 2047},
		{Op: ADDI, Rd: 10, Rs1: 10, Imm: -1},
		{Op: SLTIU, Rd: 1, Rs1: 2, Imm: 100},
		{Op: SLLI, Rd: 1, Rs1: 2, Imm: 31},
		{Op: SRAI, Rd: 1, Rs1: 2, Imm: 1},
		{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: SUB, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: SRA, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: MUL, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: MULHSU, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: REMU, Rd: 4, Rs1: 5, Rs2: 6},
		{Op: ECALL},
		{Op: EBREAK},
		{Op: FENCE},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out := Decode(w)
		if out != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestDecodeQuickNeverPanics(t *testing.T) {
	f := func(w uint32) bool {
		inst := Decode(w)
		_ = inst.String()
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodeQuick round-trips random valid instructions.
func TestEncodeDecodeQuick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	encodable := []Op{
		LUI, AUIPC, JAL, JALR, BEQ, BNE, BLT, BGE, BLTU, BGEU,
		LB, LH, LW, LBU, LHU, SB, SH, SW,
		ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
		ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU,
	}
	for n := 0; n < 5000; n++ {
		op := encodable[r.Intn(len(encodable))]
		in := Inst{Op: op, Rd: uint8(r.Intn(32)), Rs1: uint8(r.Intn(32)), Rs2: uint8(r.Intn(32))}
		switch op {
		case LUI, AUIPC:
			in.Imm = int32(uint32(r.Intn(1<<20)) << 12)
			in.Rs1, in.Rs2 = 0, 0
		case JAL:
			in.Imm = int32(r.Intn(1<<20)-1<<19) &^ 1
			in.Rs1, in.Rs2 = 0, 0
		case JALR:
			in.Imm = int32(r.Intn(4096) - 2048)
			in.Rs2 = 0
		case BEQ, BNE, BLT, BGE, BLTU, BGEU:
			in.Imm = int32(r.Intn(4096)-2048) &^ 1
			in.Rd = 0
		case LB, LH, LW, LBU, LHU:
			in.Imm = int32(r.Intn(4096) - 2048)
			in.Rs2 = 0
		case SB, SH, SW:
			in.Imm = int32(r.Intn(4096) - 2048)
			in.Rd = 0
		case SLLI, SRLI, SRAI:
			in.Imm = int32(r.Intn(32))
			in.Rs2 = 0
		case ADDI, SLTI, SLTIU, XORI, ORI, ANDI:
			in.Imm = int32(r.Intn(4096) - 2048)
			in.Rs2 = 0
		default:
			in.Imm = 0
		}
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		if out := Decode(w); out != in {
			t.Fatalf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: JAL, Imm: 1 << 20},
		{Op: JAL, Imm: 3}, // odd
		{Op: BEQ, Imm: 4096},
		{Op: BEQ, Imm: 1}, // odd
		{Op: ADDI, Imm: 2048},
		{Op: SW, Imm: -2049},
		{Op: SLLI, Imm: 32},
		{Op: LUI, Imm: 0x123}, // low bits set
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v): expected error", in)
		}
	}
}

func negOne() uint32 { return ^uint32(0) }

func TestEvalMatchesSpec(t *testing.T) {
	if Eval(DIV, 0x80000000, 0xFFFFFFFF) != 0x80000000 {
		t.Error("div overflow")
	}
	if Eval(DIV, 10, 0) != 0xFFFFFFFF {
		t.Error("div by zero")
	}
	if Eval(REM, 10, 0) != 10 {
		t.Error("rem by zero")
	}
	if Eval(MULHSU, negOne(), 0xFFFFFFFF) != 0xFFFFFFFF {
		t.Error("mulhsu")
	}
	if Eval(SRA, 0x80000000, 4) != 0xF8000000 {
		t.Error("sra")
	}
}

func TestBranchTaken(t *testing.T) {
	neg1 := uint32(0xFFFFFFFF)
	cases := []struct {
		op   Op
		a, b uint32
		want bool
	}{
		{BEQ, 1, 1, true}, {BEQ, 1, 2, false},
		{BNE, 1, 2, true}, {BNE, 1, 1, false},
		{BLT, neg1, 0, true}, {BLT, 0, neg1, false},
		{BGE, 0, neg1, true}, {BGE, neg1, 0, false},
		{BLTU, 0, neg1, true}, {BLTU, neg1, 0, false},
		{BGEU, neg1, 0, true}, {BGEU, 0, neg1, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v,%#x,%#x)=%v want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestReadWriteClassification(t *testing.T) {
	if (Inst{Op: LUI}).ReadsRs1() {
		t.Error("LUI should not read rs1")
	}
	if !(Inst{Op: ADDI}).ReadsRs1() {
		t.Error("ADDI reads rs1")
	}
	if !(Inst{Op: SW}).ReadsRs2() || (Inst{Op: LW}).ReadsRs2() {
		t.Error("store/load rs2 classification")
	}
	if (Inst{Op: BEQ}).WritesRd() || !(Inst{Op: JAL}).WritesRd() {
		t.Error("rd write classification")
	}
	if !(Inst{Op: JALR}).IsControl() || (Inst{Op: ADD}).IsControl() {
		t.Error("control classification")
	}
}
