package riscv

import "fmt"

// Standard RV32 opcode major groups.
const (
	opcLUI    = 0b0110111
	opcAUIPC  = 0b0010111
	opcJAL    = 0b1101111
	opcJALR   = 0b1100111
	opcBranch = 0b1100011
	opcLoad   = 0b0000011
	opcStore  = 0b0100011
	opcOpImm  = 0b0010011
	opcOp     = 0b0110011
	opcSystem = 0b1110011
	opcFence  = 0b0001111
)

// Encode packs a decoded instruction into its standard 32-bit form.
func Encode(i Inst) (uint32, error) {
	rd, rs1, rs2 := uint32(i.Rd), uint32(i.Rs1), uint32(i.Rs2)
	if rd > 31 || rs1 > 31 || rs2 > 31 {
		return 0, fmt.Errorf("riscv: encode %s: register out of range", i.Op)
	}
	imm := i.Imm
	switch i.Op {
	case LUI, AUIPC:
		if imm&0xFFF != 0 {
			return 0, fmt.Errorf("riscv: encode %s: immediate %#x has low bits set", i.Op, imm)
		}
		opc := uint32(opcLUI)
		if i.Op == AUIPC {
			opc = opcAUIPC
		}
		return uint32(imm) | rd<<7 | opc, nil
	case JAL:
		if imm < -(1<<20) || imm > (1<<20)-1 || imm%2 != 0 {
			return 0, fmt.Errorf("riscv: encode jal: offset %d out of range", imm)
		}
		u := uint32(imm)
		w := (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u>>12&0xFF)<<12
		return w | rd<<7 | opcJAL, nil
	case JALR:
		return encI(0b000, opcJALR, rd, rs1, imm)
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		f3 := map[Op]uint32{BEQ: 0, BNE: 1, BLT: 4, BGE: 5, BLTU: 6, BGEU: 7}[i.Op]
		if imm < -(1<<12) || imm > (1<<12)-1 || imm%2 != 0 {
			return 0, fmt.Errorf("riscv: encode %s: offset %d out of range", i.Op, imm)
		}
		u := uint32(imm)
		w := (u>>12&1)<<31 | (u>>5&0x3F)<<25 | rs2<<20 | rs1<<15 | f3<<12 |
			(u>>1&0xF)<<8 | (u>>11&1)<<7 | opcBranch
		return w, nil
	case LB, LH, LW, LBU, LHU:
		f3 := map[Op]uint32{LB: 0, LH: 1, LW: 2, LBU: 4, LHU: 5}[i.Op]
		return encI(f3, opcLoad, rd, rs1, imm)
	case SB, SH, SW:
		f3 := map[Op]uint32{SB: 0, SH: 1, SW: 2}[i.Op]
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("riscv: encode %s: offset %d out of range", i.Op, imm)
		}
		u := uint32(imm) & 0xFFF
		return (u>>5)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (u&0x1F)<<7 | opcStore, nil
	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI:
		f3 := map[Op]uint32{ADDI: 0, SLTI: 2, SLTIU: 3, XORI: 4, ORI: 6, ANDI: 7}[i.Op]
		return encI(f3, opcOpImm, rd, rs1, imm)
	case SLLI, SRLI, SRAI:
		if imm < 0 || imm > 31 {
			return 0, fmt.Errorf("riscv: encode %s: shift amount %d out of range", i.Op, imm)
		}
		f3 := map[Op]uint32{SLLI: 1, SRLI: 5, SRAI: 5}[i.Op]
		hi := uint32(0)
		if i.Op == SRAI {
			hi = 0b0100000 << 25
		}
		return hi | uint32(imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm, nil
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND:
		type rspec struct{ f7, f3 uint32 }
		m := map[Op]rspec{
			ADD: {0, 0}, SUB: {0b0100000, 0}, SLL: {0, 1}, SLT: {0, 2}, SLTU: {0, 3},
			XOR: {0, 4}, SRL: {0, 5}, SRA: {0b0100000, 5}, OR: {0, 6}, AND: {0, 7},
		}
		s := m[i.Op]
		return s.f7<<25 | rs2<<20 | rs1<<15 | s.f3<<12 | rd<<7 | opcOp, nil
	case MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		f3 := map[Op]uint32{MUL: 0, MULH: 1, MULHSU: 2, MULHU: 3, DIV: 4, DIVU: 5, REM: 6, REMU: 7}[i.Op]
		return 1<<25 | rs2<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOp, nil
	case ECALL:
		return opcSystem, nil
	case EBREAK:
		return 1<<20 | opcSystem, nil
	case FENCE:
		return opcFence, nil
	}
	return 0, fmt.Errorf("riscv: encode: unsupported op %v", i.Op)
}

func encI(f3, opc, rd, rs1 uint32, imm int32) (uint32, error) {
	if imm < -2048 || imm > 2047 {
		return 0, fmt.Errorf("riscv: I-immediate %d out of range", imm)
	}
	return (uint32(imm)&0xFFF)<<20 | rs1<<15 | f3<<12 | rd<<7 | opc, nil
}

// MustEncode panics on encoding error; for tests and internal codegen.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit RV32IM instruction word. Unknown encodings
// decode to ILLEGAL rather than an error so the pipeline can raise the
// fault at the right architectural point.
//
//lint:hotpath
func Decode(w uint32) Inst {
	opc := w & 0x7F
	rd := uint8(w >> 7 & 0x1F)
	f3 := w >> 12 & 7
	rs1 := uint8(w >> 15 & 0x1F)
	rs2 := uint8(w >> 20 & 0x1F)
	f7 := w >> 25

	immI := int32(w) >> 20
	immS := int32(w)>>25<<5 | int32(w>>7&0x1F)
	immB := int32(w)>>31<<12 | int32(w>>7&1)<<11 | int32(w>>25&0x3F)<<5 | int32(w>>8&0xF)<<1
	immU := int32(w & 0xFFFFF000)
	immJ := int32(w)>>31<<20 | int32(w>>12&0xFF)<<12 | int32(w>>20&1)<<11 | int32(w>>21&0x3FF)<<1

	switch opc {
	case opcLUI:
		return Inst{Op: LUI, Rd: rd, Imm: immU}
	case opcAUIPC:
		return Inst{Op: AUIPC, Rd: rd, Imm: immU}
	case opcJAL:
		return Inst{Op: JAL, Rd: rd, Imm: immJ}
	case opcJALR:
		if f3 == 0 {
			return Inst{Op: JALR, Rd: rd, Rs1: rs1, Imm: immI}
		}
	case opcBranch:
		var op Op
		switch f3 {
		case 0:
			op = BEQ
		case 1:
			op = BNE
		case 4:
			op = BLT
		case 5:
			op = BGE
		case 6:
			op = BLTU
		case 7:
			op = BGEU
		}
		if op != ILLEGAL {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB}
		}
	case opcLoad:
		var op Op
		switch f3 {
		case 0:
			op = LB
		case 1:
			op = LH
		case 2:
			op = LW
		case 4:
			op = LBU
		case 5:
			op = LHU
		}
		if op != ILLEGAL {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Imm: immI}
		}
	case opcStore:
		var op Op
		switch f3 {
		case 0:
			op = SB
		case 1:
			op = SH
		case 2:
			op = SW
		}
		if op != ILLEGAL {
			return Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS}
		}
	case opcOpImm:
		switch f3 {
		case 0:
			return Inst{Op: ADDI, Rd: rd, Rs1: rs1, Imm: immI}
		case 2:
			return Inst{Op: SLTI, Rd: rd, Rs1: rs1, Imm: immI}
		case 3:
			return Inst{Op: SLTIU, Rd: rd, Rs1: rs1, Imm: immI}
		case 4:
			return Inst{Op: XORI, Rd: rd, Rs1: rs1, Imm: immI}
		case 6:
			return Inst{Op: ORI, Rd: rd, Rs1: rs1, Imm: immI}
		case 7:
			return Inst{Op: ANDI, Rd: rd, Rs1: rs1, Imm: immI}
		case 1:
			if f7 == 0 {
				return Inst{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
		case 5:
			if f7 == 0 {
				return Inst{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
			if f7 == 0b0100000 {
				return Inst{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}
			}
		}
	case opcOp:
		if f7 == 1 {
			ops := [8]Op{MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU}
			return Inst{Op: ops[f3], Rd: rd, Rs1: rs1, Rs2: rs2}
		}
		var op Op
		switch f7 {
		case 0:
			switch f3 {
			case 0:
				op = ADD
			case 1:
				op = SLL
			case 2:
				op = SLT
			case 3:
				op = SLTU
			case 4:
				op = XOR
			case 5:
				op = SRL
			case 6:
				op = OR
			case 7:
				op = AND
			}
		case 0b0100000:
			switch f3 {
			case 0:
				op = SUB
			case 5:
				op = SRA
			}
		}
		if op != ILLEGAL {
			return Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}
		}
	case opcSystem:
		if w == opcSystem {
			return Inst{Op: ECALL}
		}
		if w == 1<<20|opcSystem {
			return Inst{Op: EBREAK}
		}
	case opcFence:
		return Inst{Op: FENCE}
	}
	return Inst{Op: ILLEGAL}
}

// Eval computes register-register and register-immediate ALU results with
// RV32IM semantics (shared by the functional emulator and the cycle core).
//
//lint:hotpath
func Eval(op Op, a, b uint32) uint32 {
	switch op {
	case ADD, ADDI:
		return a + b
	case SUB:
		return a - b
	case SLL, SLLI:
		return a << (b & 31)
	case SLT, SLTI:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case SLTU, SLTIU:
		if a < b {
			return 1
		}
		return 0
	case XOR, XORI:
		return a ^ b
	case SRL, SRLI:
		return a >> (b & 31)
	case SRA, SRAI:
		return uint32(int32(a) >> (b & 31))
	case OR, ORI:
		return a | b
	case AND, ANDI:
		return a & b
	case MUL:
		return a * b
	case MULH:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case MULHSU:
		return uint32(uint64(int64(int32(a))*int64(uint64(b))) >> 32)
	case MULHU:
		return uint32(uint64(a) * uint64(b) >> 32)
	case DIV:
		if b == 0 {
			return 0xFFFFFFFF
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a
		}
		return uint32(int32(a) / int32(b))
	case DIVU:
		if b == 0 {
			return 0xFFFFFFFF
		}
		return a / b
	case REM:
		if b == 0 {
			return a
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case REMU:
		if b == 0 {
			return a
		}
		return a % b
	}
	return 0
}

// BranchTaken evaluates a conditional branch with operands a, b.
//
//lint:hotpath
func BranchTaken(op Op, a, b uint32) bool {
	switch op {
	case BEQ:
		return a == b
	case BNE:
		return a != b
	case BLT:
		return int32(a) < int32(b)
	case BGE:
		return int32(a) >= int32(b)
	case BLTU:
		return a < b
	case BGEU:
		return a >= b
	}
	return false
}

// LoadWidth returns the access width and signedness of a load.
//
//lint:hotpath
func LoadWidth(op Op) (bytes int, signExt bool) {
	switch op {
	case LW:
		return 4, false
	case LH:
		return 2, true
	case LHU:
		return 2, false
	case LB:
		return 1, true
	case LBU:
		return 1, false
	}
	return 0, false
}

// StoreWidth returns the access width of a store.
//
//lint:hotpath
func StoreWidth(op Op) int {
	switch op {
	case SW:
		return 4
	case SH:
		return 2
	case SB:
		return 1
	}
	return 0
}

// ExtendLoad applies width/sign extension to a raw loaded value.
//
//lint:hotpath
func ExtendLoad(op Op, raw uint32) uint32 {
	switch op {
	case LW:
		return raw
	case LH:
		return uint32(int32(int16(raw)))
	case LHU:
		return uint32(uint16(raw))
	case LB:
		return uint32(int32(int8(raw)))
	case LBU:
		return uint32(uint8(raw))
	}
	return raw
}
