package straight

import "fmt"

// Field layout (32-bit word, bit 31 = MSB):
//
//	FmtN : op[31:24]
//	FmtR : op[31:24] src1[23:14] src2[13:4]
//	FmtI : op[31:24] src1[23:14] imm14[13:0]  (signed)
//	FmtS : op[31:24] src1[23:14] src2[13:4] imm4[3:0] (signed; SYS: func code)
//	FmtJ : op[31:24] imm24[23:0] (signed; J/JAL in units of 4 bytes,
//	       SPADD in bytes, LUI zero-extended then shifted left 8)
//	FmtJR: op[31:24] src1[23:14]
const (
	immBitsI = 14
	immBitsS = 4
	immBitsJ = 24

	// ImmMinI..ImmMaxJ give the encodable immediate ranges per format.
	ImmMinI = -(1 << (immBitsI - 1))
	ImmMaxI = 1<<(immBitsI-1) - 1
	ImmMinS = -(1 << (immBitsS - 1))
	ImmMaxS = 1<<(immBitsS-1) - 1
	ImmMinJ = -(1 << (immBitsJ - 1))
	ImmMaxJ = 1<<(immBitsJ-1) - 1

	// LUIMax is the largest operand accepted by LUI (unsigned 24 bits).
	LUIMax = 1<<24 - 1
)

// Encode packs the instruction into its 32-bit binary form. It validates
// distances and immediate ranges and returns a descriptive error on
// violation, so toolchain bugs surface at assembly time rather than as
// corrupted programs.
func Encode(inst Inst) (uint32, error) {
	if inst.Op >= numOps {
		return 0, fmt.Errorf("straight: encode: invalid opcode %d", inst.Op)
	}
	if inst.Src1 > MaxDistance {
		return 0, fmt.Errorf("straight: encode %s: src1 distance %d exceeds %d", inst.Op, inst.Src1, MaxDistance)
	}
	if inst.Src2 > MaxDistance {
		return 0, fmt.Errorf("straight: encode %s: src2 distance %d exceeds %d", inst.Op, inst.Src2, MaxDistance)
	}
	w := uint32(inst.Op) << 24
	switch inst.Op.Format() {
	case FmtN:
		// no operands
	case FmtR:
		w |= uint32(inst.Src1) << 14
		w |= uint32(inst.Src2) << 4
	case FmtI:
		if inst.Imm < ImmMinI || inst.Imm > ImmMaxI {
			return 0, fmt.Errorf("straight: encode %s: imm %d out of 14-bit range", inst.Op, inst.Imm)
		}
		w |= uint32(inst.Src1) << 14
		w |= uint32(inst.Imm) & (1<<immBitsI - 1)
	case FmtS:
		if inst.Op == SYS {
			if inst.Imm < 0 || inst.Imm > 15 {
				return 0, fmt.Errorf("straight: encode SYS: func %d out of range 0..15", inst.Imm)
			}
		} else if inst.Imm < ImmMinS || inst.Imm > ImmMaxS {
			return 0, fmt.Errorf("straight: encode %s: imm %d out of 4-bit range", inst.Op, inst.Imm)
		}
		w |= uint32(inst.Src1) << 14
		w |= uint32(inst.Src2) << 4
		w |= uint32(inst.Imm) & (1<<immBitsS - 1)
	case FmtJ:
		if inst.Op == LUI {
			if inst.Imm < 0 || inst.Imm > LUIMax {
				return 0, fmt.Errorf("straight: encode LUI: imm %d out of 24-bit unsigned range", inst.Imm)
			}
		} else if inst.Imm < ImmMinJ || inst.Imm > ImmMaxJ {
			return 0, fmt.Errorf("straight: encode %s: imm %d out of 24-bit range", inst.Op, inst.Imm)
		}
		w |= uint32(inst.Imm) & (1<<immBitsJ - 1)
	case FmtJR:
		w |= uint32(inst.Src1) << 14
	}
	return w, nil
}

// MustEncode is Encode for known-valid instructions; it panics on error.
// It is intended for tests and internal code generation.
func MustEncode(inst Inst) uint32 {
	w, err := Encode(inst)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit instruction word.
//
//lint:hotpath
func Decode(w uint32) (Inst, error) {
	op := Op(w >> 24)
	if op >= numOps {
		return Inst{}, fmt.Errorf("straight: decode: invalid opcode byte %#02x", w>>24) //lint:alloc decode fault aborts the run
	}
	inst := Inst{Op: op}
	switch op.Format() {
	case FmtN:
	case FmtR:
		inst.Src1 = uint16(w >> 14 & 0x3FF)
		inst.Src2 = uint16(w >> 4 & 0x3FF)
	case FmtI:
		inst.Src1 = uint16(w >> 14 & 0x3FF)
		inst.Imm = signExtend(w&(1<<immBitsI-1), immBitsI)
	case FmtS:
		inst.Src1 = uint16(w >> 14 & 0x3FF)
		inst.Src2 = uint16(w >> 4 & 0x3FF)
		if op == SYS {
			inst.Imm = int32(w & 0xF)
		} else {
			inst.Imm = signExtend(w&0xF, immBitsS)
		}
	case FmtJ:
		if op == LUI {
			inst.Imm = int32(w & (1<<immBitsJ - 1))
		} else {
			inst.Imm = signExtend(w&(1<<immBitsJ-1), immBitsJ)
		}
	case FmtJR:
		inst.Src1 = uint16(w >> 14 & 0x3FF)
	}
	return inst, nil
}

func signExtend(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}
