package straight

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripAllFormats(t *testing.T) {
	cases := []Inst{
		{Op: NOP},
		{Op: ADD, Src1: 1, Src2: 2},
		{Op: SUB, Src1: 1023, Src2: 0},
		{Op: MULH, Src1: 512, Src2: 511},
		{Op: ADDI, Src1: 4, Imm: -1},
		{Op: ADDI, Src1: 0, Imm: ImmMaxI},
		{Op: SLTIU, Src1: 7, Imm: ImmMinI},
		{Op: LW, Src1: 3, Imm: 4},
		{Op: LBU, Src1: 1, Imm: -8},
		{Op: SW, Src1: 4, Src2: 7, Imm: 0},
		{Op: SB, Src1: 1, Src2: 2, Imm: -8},
		{Op: SH, Src1: 9, Src2: 10, Imm: 7},
		{Op: BEZ, Src1: 1, Imm: -100},
		{Op: BNZ, Src1: 2, Imm: 100},
		{Op: J, Imm: -(1 << 20)},
		{Op: JAL, Imm: 1 << 20},
		{Op: JR, Src1: 5},
		{Op: JALR, Src1: 1023},
		{Op: RMOV, Src1: 4},
		{Op: SPADD, Imm: -64},
		{Op: SPADD, Imm: ImmMaxJ},
		{Op: LUI, Imm: LUIMax},
		{Op: LUI, Imm: 0},
		{Op: SYS, Src1: 1, Src2: 0, Imm: SysExit},
		{Op: SYS, Src1: 2, Src2: 3, Imm: 15},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(%#08x): %v", w, err)
		}
		if out != in {
			t.Errorf("round trip %v -> %#08x -> %v", in, w, out)
		}
	}
}

// TestEncodeDecodeQuick checks by property that every valid random
// instruction round-trips exactly through the binary encoding.
func TestEncodeDecodeQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	gen := func() Inst {
		op := Op(r.Intn(NumOps))
		in := Inst{Op: op}
		switch op.Format() {
		case FmtR:
			in.Src1 = uint16(r.Intn(MaxDistance + 1))
			in.Src2 = uint16(r.Intn(MaxDistance + 1))
		case FmtI:
			in.Src1 = uint16(r.Intn(MaxDistance + 1))
			in.Imm = int32(r.Intn(ImmMaxI-ImmMinI+1)) + ImmMinI
		case FmtS:
			in.Src1 = uint16(r.Intn(MaxDistance + 1))
			in.Src2 = uint16(r.Intn(MaxDistance + 1))
			if op == SYS {
				in.Imm = int32(r.Intn(16))
			} else {
				in.Imm = int32(r.Intn(ImmMaxS-ImmMinS+1)) + ImmMinS
			}
		case FmtJ:
			if op == LUI {
				in.Imm = int32(r.Intn(LUIMax + 1))
			} else {
				in.Imm = int32(r.Intn(ImmMaxJ-ImmMinJ+1)) + ImmMinJ
			}
		case FmtJR:
			in.Src1 = uint16(r.Intn(MaxDistance + 1))
		}
		return in
	}
	f := func(seed int64) bool {
		in := gen()
		w, err := Encode(in)
		if err != nil {
			t.Logf("unexpected encode error for %v: %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			return false
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Inst{
		{Op: ADD, Src1: MaxDistance + 1},
		{Op: ADD, Src2: MaxDistance + 1},
		{Op: ADDI, Imm: ImmMaxI + 1},
		{Op: ADDI, Imm: ImmMinI - 1},
		{Op: SW, Imm: ImmMaxS + 1},
		{Op: SW, Imm: ImmMinS - 1},
		{Op: J, Imm: ImmMaxJ + 1},
		{Op: LUI, Imm: -1},
		{Op: LUI, Imm: LUIMax + 1},
		{Op: SYS, Imm: 16},
		{Op: SYS, Imm: -1},
		{Op: numOps},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v): expected range error", in)
		}
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint32(numOps) << 24); err == nil {
		t.Fatal("expected invalid opcode error")
	}
	if _, err := Decode(0xFF << 24); err == nil {
		t.Fatal("expected invalid opcode error for 0xFF")
	}
}

func TestLookupAndAliases(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := Lookup(op.String())
		if !ok || got != op {
			t.Errorf("Lookup(%q) = %v,%v", op.String(), got, ok)
		}
		// Case-insensitive.
		got, ok = Lookup(strings.ToLower(op.String()))
		if !ok || got != op {
			t.Errorf("Lookup(lower %q) = %v,%v", op.String(), got, ok)
		}
	}
	if op, ok := Lookup("LD"); !ok || op != LW {
		t.Errorf("alias LD: got %v,%v", op, ok)
	}
	if op, ok := Lookup("ST"); !ok || op != SW {
		t.Errorf("alias ST: got %v,%v", op, ok)
	}
	if _, ok := Lookup("BOGUS"); ok {
		t.Error("Lookup(BOGUS) should fail")
	}
}

func u32(v int32) uint32 { return uint32(v) }

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op      Op
		a, b    uint32
		want    uint32
		comment string
	}{
		{ADD, 2, 3, 5, "add"},
		{SUB, 2, 3, 0xFFFFFFFF, "sub wraps"},
		{AND, 0b1100, 0b1010, 0b1000, "and"},
		{OR, 0b1100, 0b1010, 0b1110, "or"},
		{XOR, 0b1100, 0b1010, 0b0110, "xor"},
		{SLL, 1, 33, 2, "shift amount mod 32"},
		{SRL, 0x80000000, 31, 1, "srl"},
		{SRA, 0x80000000, 31, 0xFFFFFFFF, "sra sign"},
		{SLT, 0xFFFFFFFF, 0, 1, "-1 < 0 signed"},
		{SLTU, 0xFFFFFFFF, 0, 0, "max !< 0 unsigned"},
		{MUL, 7, 6, 42, "mul"},
		{MULH, 0x80000000, 2, 0xFFFFFFFF, "mulh signed"},
		{MULHU, 0x80000000, 2, 1, "mulhu"},
		{DIV, 7, 2, 3, "div"},
		{DIV, u32(-7), 2, u32(-3), "div signed"},
		{DIV, 5, 0, 0xFFFFFFFF, "div by zero"},
		{DIV, 0x80000000, 0xFFFFFFFF, 0x80000000, "div overflow"},
		{DIVU, 7, 2, 3, "divu"},
		{REM, u32(-7), 2, u32(-1), "rem signed"},
		{REM, 5, 0, 5, "rem by zero"},
		{REM, 0x80000000, 0xFFFFFFFF, 0, "rem overflow"},
		{REMU, 7, 0, 7, "remu by zero"},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("%s: EvalALU(%v,%#x,%#x) = %#x want %#x", c.comment, c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUImm(t *testing.T) {
	if got := EvalALUImm(ADDI, 5, -3); got != 2 {
		t.Errorf("ADDI: got %d", got)
	}
	if got := EvalALUImm(SLTI, u32(-5), -3); got != 1 {
		t.Errorf("SLTI signed: got %d", got)
	}
	if got := EvalALUImm(SLTIU, 5, -1); got != 1 {
		t.Errorf("SLTIU treats imm as unsigned: got %d", got)
	}
	if got := EvalALUImm(SRAI, 0x80000000, 4); got != 0xF8000000 {
		t.Errorf("SRAI: got %#x", got)
	}
}

func TestLoadStoreHelpers(t *testing.T) {
	if b, s := LoadWidth(LW); b != 4 || s {
		t.Errorf("LW width: %d,%v", b, s)
	}
	if b, s := LoadWidth(LB); b != 1 || !s {
		t.Errorf("LB width: %d,%v", b, s)
	}
	if StoreWidth(SH) != 2 {
		t.Error("SH width")
	}
	if got := ExtendLoad(LB, 0x80); got != 0xFFFFFF80 {
		t.Errorf("LB sign extend: %#x", got)
	}
	if got := ExtendLoad(LHU, 0xFFFF); got != 0xFFFF {
		t.Errorf("LHU zero extend: %#x", got)
	}
}

func TestBranchTakenAndLUI(t *testing.T) {
	if !BranchTaken(BEZ, 0) || BranchTaken(BEZ, 1) {
		t.Error("BEZ condition")
	}
	if BranchTaken(BNZ, 0) || !BranchTaken(BNZ, 1) {
		t.Error("BNZ condition")
	}
	if LUIValue(0x123456) != 0x12345600 {
		t.Error("LUI value")
	}
}

func TestInstStringAndSources(t *testing.T) {
	if s := (Inst{Op: ADD, Src1: 1, Src2: 2}).String(); s != "ADD [1], [2]" {
		t.Errorf("ADD string: %q", s)
	}
	if s := (Inst{Op: ADDI, Src1: 4, Imm: 1}).String(); s != "ADDi [4], 1" {
		t.Errorf("ADDi string: %q", s)
	}
	if n := (Inst{Op: SW}).NumSources(); n != 2 {
		t.Errorf("SW sources: %d", n)
	}
	if n := (Inst{Op: RMOV}).NumSources(); n != 1 {
		t.Errorf("RMOV sources: %d", n)
	}
	if n := (Inst{Op: J}).NumSources(); n != 0 {
		t.Errorf("J sources: %d", n)
	}
	if !(Inst{Op: BEZ}).IsControl() || !(Inst{Op: JR}).IsControl() || (Inst{Op: ADD}).IsControl() {
		t.Error("IsControl classification")
	}
	if !(Inst{Op: JAL}).WritesLink() || (Inst{Op: J}).WritesLink() {
		t.Error("WritesLink classification")
	}
}
