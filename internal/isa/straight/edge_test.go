package straight

import "testing"

// TestEncodeBoundaryRoundTrips pins the encoding at every field boundary
// the fuzz generator is biased toward: operand distances 0 and 1023, the
// extremes of each immediate field, and SPADD's full signed 24-bit
// range. Each case round-trips byte-exactly (encode → decode → encode)
// and checks the decoded fields individually, so a silent wrap in either
// direction cannot pass.
func TestEncodeBoundaryRoundTrips(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
	}{
		{"fmtR-dist-zero", Inst{Op: ADD, Src1: 0, Src2: 0}},
		{"fmtR-dist-max-src1", Inst{Op: ADD, Src1: MaxDistance, Src2: 1}},
		{"fmtR-dist-max-src2", Inst{Op: SUB, Src1: 1, Src2: MaxDistance}},
		{"fmtR-dist-max-both", Inst{Op: MULHU, Src1: MaxDistance, Src2: MaxDistance}},
		{"fmtI-imm-max", Inst{Op: ADDI, Src1: 0, Imm: ImmMaxI}},
		{"fmtI-imm-min", Inst{Op: ADDI, Src1: MaxDistance, Imm: ImmMinI}},
		{"fmtI-imm-minus-one", Inst{Op: XORI, Src1: 3, Imm: -1}},
		{"fmtI-load-max", Inst{Op: LW, Src1: MaxDistance, Imm: ImmMaxI}},
		{"fmtI-load-min", Inst{Op: LB, Src1: 1, Imm: ImmMinI}},
		{"fmtI-branch-max", Inst{Op: BNZ, Src1: MaxDistance, Imm: ImmMaxI}},
		{"fmtI-branch-min", Inst{Op: BEZ, Src1: 1, Imm: ImmMinI}},
		{"fmtS-imm-max", Inst{Op: SW, Src1: MaxDistance, Src2: MaxDistance, Imm: ImmMaxS}},
		{"fmtS-imm-min", Inst{Op: SB, Src1: 1, Src2: 2, Imm: ImmMinS}},
		{"fmtS-sys-max-func", Inst{Op: SYS, Src1: 1, Src2: 0, Imm: 15}},
		{"fmtS-sys-exit", Inst{Op: SYS, Src1: MaxDistance, Src2: 0, Imm: SysExit}},
		{"fmtJ-imm-max", Inst{Op: J, Imm: ImmMaxJ}},
		{"fmtJ-imm-min", Inst{Op: JAL, Imm: ImmMinJ}},
		{"fmtJ-lui-max", Inst{Op: LUI, Imm: LUIMax}},
		{"fmtJ-lui-zero", Inst{Op: LUI, Imm: 0}},
		{"fmtJ-spadd-max", Inst{Op: SPADD, Imm: ImmMaxJ}},
		{"fmtJ-spadd-min", Inst{Op: SPADD, Imm: ImmMinJ}},
		{"fmtJ-spadd-zero", Inst{Op: SPADD, Imm: 0}}, // the SP re-anchor idiom
		{"fmtJR-dist-max", Inst{Op: JR, Src1: MaxDistance}},
		{"fmtJR-rmov-max", Inst{Op: RMOV, Src1: MaxDistance}},
		{"fmtJR-jalr-one", Inst{Op: JALR, Src1: 1}},
		{"fmtN-nop", Inst{Op: NOP}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w, err := Encode(c.in)
			if err != nil {
				t.Fatalf("encode %v: %v", c.in, err)
			}
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("decode %#08x: %v", w, err)
			}
			if got != c.in {
				t.Fatalf("round trip changed the instruction:\n  in  %+v\n  out %+v (word %#08x)", c.in, got, w)
			}
			w2, err := Encode(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if w2 != w {
				t.Fatalf("re-encode not byte-exact: %#08x vs %#08x", w2, w)
			}
		})
	}
}

// TestEncodeRejectsBeyondBoundaries complements the round trips: one
// past every boundary must be an explicit error, never a wrap.
func TestEncodeRejectsBeyondBoundaries(t *testing.T) {
	cases := []struct {
		name string
		in   Inst
	}{
		{"src1-over", Inst{Op: ADD, Src1: MaxDistance + 1}},
		{"src2-over", Inst{Op: ADD, Src2: MaxDistance + 1}},
		{"immI-over", Inst{Op: ADDI, Imm: ImmMaxI + 1}},
		{"immI-under", Inst{Op: ADDI, Imm: ImmMinI - 1}},
		{"immS-over", Inst{Op: SW, Imm: ImmMaxS + 1}},
		{"immS-under", Inst{Op: SW, Imm: ImmMinS - 1}},
		{"sys-func-over", Inst{Op: SYS, Imm: 16}},
		{"sys-func-under", Inst{Op: SYS, Imm: -1}},
		{"immJ-over", Inst{Op: J, Imm: ImmMaxJ + 1}},
		{"immJ-under", Inst{Op: J, Imm: ImmMinJ - 1}},
		{"lui-over", Inst{Op: LUI, Imm: LUIMax + 1}},
		{"lui-under", Inst{Op: LUI, Imm: -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if w, err := Encode(c.in); err == nil {
				t.Fatalf("encode %+v: want error, got word %#08x", c.in, w)
			}
		})
	}
}

// TestDisassemblyStability pins the String() rendering of the boundary
// shapes. The fuzz reproducers and sverify.Window output embed this text,
// so it must not drift.
func TestDisassemblyStability(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ADD, Src1: MaxDistance, Src2: 1}, "ADD [1023], [1]"},
		{Inst{Op: ADDI, Src1: 0, Imm: ImmMinI}, "ADDi [0], -8192"},
		{Inst{Op: SW, Src1: 1, Src2: MaxDistance, Imm: ImmMaxS}, "SW [1], [1023], 7"},
		{Inst{Op: SYS, Src1: 2, Src2: 0, Imm: SysExit}, "SYS 0, [2], [0]"},
		{Inst{Op: SPADD, Imm: -64}, "SPADD -64"},
		{Inst{Op: LUI, Imm: LUIMax}, "LUI 16777215"},
		{Inst{Op: RMOV, Src1: MaxDistance}, "RMOV [1023]"},
		{Inst{Op: NOP}, "NOP"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
		// Decoding the encoded word must disassemble identically.
		w := MustEncode(c.in)
		dec, err := Decode(w)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got := dec.String(); got != c.want {
			t.Errorf("decoded String = %q, want %q", got, c.want)
		}
	}
}

// TestDecodeDistanceFieldWidth decodes hand-built words with all ten
// distance bits set, proving no bit of either source field is dropped.
func TestDecodeDistanceFieldWidth(t *testing.T) {
	for _, op := range []Op{ADD, SW, JR} {
		in := Inst{Op: op, Src1: MaxDistance}
		if op.Format() == FmtR || op.Format() == FmtS {
			in.Src2 = MaxDistance
		}
		w := MustEncode(in)
		dec, err := Decode(w)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if dec.Src1 != MaxDistance {
			t.Errorf("%v: src1 %d, want %d", op, dec.Src1, MaxDistance)
		}
		if (op.Format() == FmtR || op.Format() == FmtS) && dec.Src2 != MaxDistance {
			t.Errorf("%v: src2 %d, want %d", op, dec.Src2, MaxDistance)
		}
	}
	// MaxDistance must itself be the full 10-bit field.
	if MaxDistance != 1023 {
		t.Fatalf("MaxDistance = %d, want 1023", MaxDistance)
	}
}
