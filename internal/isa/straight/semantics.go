package straight

// This file defines the architectural value semantics of STRAIGHT
// instructions as pure functions. The functional emulator and the
// cycle-accurate core share these helpers so their results can never
// diverge: the cycle model's execute stage calls exactly this code.

// EvalALU computes the result of a register-register ALU/MUL/DIV operation.
// Division semantics follow RV32M (the evaluation's RV32IM counterpart):
// divide-by-zero yields all-ones quotient (DIV/DIVU) and the dividend as
// remainder (REM/REMU); overflow (MinInt32 / -1) yields MinInt32 and 0.
//
//lint:hotpath
func EvalALU(op Op, a, b uint32) uint32 {
	switch op {
	case ADD:
		return a + b
	case SUB:
		return a - b
	case AND:
		return a & b
	case OR:
		return a | b
	case XOR:
		return a ^ b
	case SLL:
		return a << (b & 31)
	case SRL:
		return a >> (b & 31)
	case SRA:
		return uint32(int32(a) >> (b & 31))
	case SLT:
		if int32(a) < int32(b) {
			return 1
		}
		return 0
	case SLTU:
		if a < b {
			return 1
		}
		return 0
	case MUL:
		return a * b
	case MULH:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case MULHU:
		return uint32(uint64(a) * uint64(b) >> 32)
	case DIV:
		if b == 0 {
			return 0xFFFFFFFF
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return a
		}
		return uint32(int32(a) / int32(b))
	case DIVU:
		if b == 0 {
			return 0xFFFFFFFF
		}
		return a / b
	case REM:
		if b == 0 {
			return a
		}
		if int32(a) == -1<<31 && int32(b) == -1 {
			return 0
		}
		return uint32(int32(a) % int32(b))
	case REMU:
		if b == 0 {
			return a
		}
		return a % b
	}
	return 0
}

// EvalALUImm computes the result of a register-immediate ALU operation.
//
//lint:hotpath
func EvalALUImm(op Op, a uint32, imm int32) uint32 {
	b := uint32(imm)
	switch op {
	case ADDI:
		return a + b
	case ANDI:
		return a & b
	case ORI:
		return a | b
	case XORI:
		return a ^ b
	case SLLI:
		return a << (b & 31)
	case SRLI:
		return a >> (b & 31)
	case SRAI:
		return uint32(int32(a) >> (b & 31))
	case SLTI:
		if int32(a) < imm {
			return 1
		}
		return 0
	case SLTIU:
		if a < b {
			return 1
		}
		return 0
	}
	return 0
}

// BranchTaken evaluates a conditional branch condition on operand v.
//
//lint:hotpath
func BranchTaken(op Op, v uint32) bool {
	switch op {
	case BEZ:
		return v == 0
	case BNZ:
		return v != 0
	}
	return false
}

// LUIValue returns the value materialized by LUI with the given 24-bit
// immediate operand.
//
//lint:hotpath
func LUIValue(imm int32) uint32 { return uint32(imm) << 8 }

// LoadWidth returns the access width in bytes and whether the load
// sign-extends.
//
//lint:hotpath
func LoadWidth(op Op) (bytes int, signExt bool) {
	switch op {
	case LW:
		return 4, false
	case LH:
		return 2, true
	case LHU:
		return 2, false
	case LB:
		return 1, true
	case LBU:
		return 1, false
	}
	return 0, false
}

// StoreWidth returns the access width in bytes of a store.
//
//lint:hotpath
func StoreWidth(op Op) int {
	switch op {
	case SW:
		return 4
	case SH:
		return 2
	case SB:
		return 1
	}
	return 0
}

// ExtendLoad applies the width/sign extension of op to a raw little-endian
// value read from memory.
//
//lint:hotpath
func ExtendLoad(op Op, raw uint32) uint32 {
	switch op {
	case LW:
		return raw
	case LH:
		return uint32(int32(int16(raw)))
	case LHU:
		return uint32(uint16(raw))
	case LB:
		return uint32(int32(int8(raw)))
	case LBU:
		return uint32(uint8(raw))
	}
	return raw
}
