package straight

import "testing"

// FuzzDecode checks the decoder is total (never panics) and that every
// decodable word round-trips: the decoded instruction must re-encode
// without error and decode back to the identical Inst. (Word-level
// identity is not required: formats with unused bit ranges — e.g. FmtN —
// decode many words to one canonical instruction.)
func FuzzDecode(f *testing.F) {
	seeds := []uint32{
		0x00000000, // NOP
		0xffffffff, // invalid opcode space
		mustEncode(Inst{Op: ADD, Src1: 1, Src2: 2}),
		mustEncode(Inst{Op: ADDI, Src1: 3, Imm: -42}),
		mustEncode(Inst{Op: SW, Src1: 4, Src2: 7, Imm: 4}),
		mustEncode(Inst{Op: LUI, Imm: 0x123456}),
		mustEncode(Inst{Op: J, Imm: -64}),
		mustEncode(Inst{Op: JR, Src1: 5}),
		mustEncode(Inst{Op: SPADD, Imm: -16}),
		mustEncode(Inst{Op: SYS, Src1: 1, Imm: SysExit}),
		mustEncode(Inst{Op: BEZ, Src1: 1023, Imm: 8191}),
	}
	for _, w := range seeds {
		f.Add(w)
	}
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := Decode(w)
		if err != nil {
			return // undecodable words just have to fail cleanly
		}
		w2, err := Encode(inst)
		if err != nil {
			t.Fatalf("decoded %#08x to %v, which does not re-encode: %v", w, inst, err)
		}
		inst2, err := Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %v to %#08x, which does not decode: %v", inst, w2, err)
		}
		if inst2 != inst {
			t.Fatalf("round trip changed the instruction: %#08x -> %v -> %#08x -> %v", w, inst, w2, inst2)
		}
	})
}

func mustEncode(inst Inst) uint32 {
	w, err := Encode(inst)
	if err != nil {
		panic(err)
	}
	return w
}
