// Package straight defines the STRAIGHT instruction set architecture:
// a RISC-style integer ISA whose source operands are expressed as the
// dynamic distance to the producer instruction (Irie et al., MICRO 2018).
//
// Key properties (paper §III-A):
//
//   - Every instruction implicitly writes exactly one destination register,
//     identified by its position in the dynamic instruction stream. Two
//     instructions can never share a destination, so registers are
//     write-once.
//   - A source operand "[k]" names the value produced by the k-th previous
//     instruction on the executed control-flow path. Distance 0 reads the
//     constant zero ("[0]" is the zero register).
//   - The largest representable distance is MaxDistance (10-bit source
//     fields, 2^10-1 = 1023). A value becomes dead once 1023 younger
//     instructions have been fetched after its producer.
//   - The stack pointer SP is the only overwritable architectural register.
//     It is modified exclusively by SPADD, which adds a signed immediate to
//     SP in order at decode and also writes the new SP value to its normal
//     write-once destination, so later loads/stores can address the frame by
//     distance.
//   - Store instructions occupy a destination register like every other
//     instruction; the stored value is returned if the register is read.
//
// The paper fixes the operand model and the 10-bit source fields but not a
// complete opcode map; this package defines a concrete 32-bit encoding
// documented per format below. The integer operation set mirrors RV32IM so
// the STRAIGHT and RISC-V backends can lower the same IR node set, matching
// the paper's evaluation setup (32-bit, no floating point).
package straight

import "fmt"

// MaxDistance is the largest source-operand distance the ISA can encode.
// Source fields are 10 bits wide; distance 0 is the zero register.
const MaxDistance = 1023

// Op enumerates STRAIGHT opcodes.
type Op uint8

const (
	// NOP writes 0 to its destination and has no other effect.
	NOP Op = iota

	// Register-register ALU operations (format R).
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	MULH
	MULHU
	DIV
	DIVU
	REM
	REMU

	// Register-immediate ALU operations (format I, 14-bit signed immediate).
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU

	// LUI loads imm24<<8 into the destination (format U). Any 32-bit
	// constant is materialized as LUI(hi24) followed by ORI [1] lo8.
	LUI

	// Loads (format I): address = value([src1]) + imm14.
	LW
	LH
	LHU
	LB
	LBU

	// Stores (format S): mem[value([src1]) + imm4] = value([src2]).
	// The stored value is also written to the destination register.
	SW
	SH
	SB

	// Conditional branches (format B): taken if value([src1]) == 0 (BEZ)
	// or != 0 (BNZ). Target = PC + imm14*4. The destination receives the
	// branch outcome (1 if taken).
	BEZ
	BNZ

	// Unconditional jumps (format J): target = PC + imm24*4.
	// J writes 0; JAL writes the return address PC+4.
	J
	JAL

	// Register jumps (format JR): target = value([src1]).
	// JR writes 0; JALR writes PC+4.
	JR
	JALR

	// RMOV copies value([src1]) to the destination (format JR). It is the
	// padding instruction used by the compiler for distance fixing and
	// distance bounding.
	RMOV

	// SPADD adds imm24 (signed, bytes) to SP in order at decode and writes
	// the updated SP to the destination (format J).
	SPADD

	// SYS performs an environment call (format S: src1, src2, func in the
	// 4-bit immediate field). See the Sys* function codes.
	SYS

	numOps // sentinel
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Sys* are SYS function codes carried in the 4-bit immediate of a SYS
// instruction. They stand in for the OS the paper's benchmarks assume.
const (
	// SysExit terminates the program; exit code = value([src1]).
	SysExit = 0
	// SysPutc writes the low byte of value([src1]) to the console.
	SysPutc = 1
	// SysPuti writes value([src1]) to the console as a signed decimal.
	SysPuti = 2
	// SysCycle returns the current dynamic instruction count (a cheap
	// substitute for a cycle counter, used by benchmark self-timing).
	SysCycle = 3
	// SysPutu writes value([src1]) as unsigned decimal.
	SysPutu = 4
	// SysPutx writes value([src1]) as hexadecimal.
	SysPutx = 5
)

// Format identifies the bit-field layout of an instruction word.
type Format uint8

const (
	// FmtN: op(8) | unused(24). NOP.
	FmtN Format = iota
	// FmtR: op(8) | src1(10) | src2(10) | unused(4).
	FmtR
	// FmtI: op(8) | src1(10) | imm14. ALU-immediate, loads, branches.
	FmtI
	// FmtS: op(8) | src1(10) | src2(10) | imm4. Stores, SYS.
	FmtS
	// FmtJ: op(8) | imm24. J, JAL, SPADD, LUI.
	FmtJ
	// FmtJR: op(8) | src1(10) | unused(14). JR, JALR, RMOV.
	FmtJR
)

// Class is the coarse execution class of an opcode, used by the pipeline
// models to steer instructions to functional units.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branches
	ClassJump   // unconditional direct and indirect jumps
	ClassSys
	ClassNop
)

type opInfo struct {
	name   string
	format Format
	class  Class
}

var opTable = [numOps]opInfo{
	NOP:   {"NOP", FmtN, ClassNop},
	ADD:   {"ADD", FmtR, ClassALU},
	SUB:   {"SUB", FmtR, ClassALU},
	AND:   {"AND", FmtR, ClassALU},
	OR:    {"OR", FmtR, ClassALU},
	XOR:   {"XOR", FmtR, ClassALU},
	SLL:   {"SLL", FmtR, ClassALU},
	SRL:   {"SRL", FmtR, ClassALU},
	SRA:   {"SRA", FmtR, ClassALU},
	SLT:   {"SLT", FmtR, ClassALU},
	SLTU:  {"SLTU", FmtR, ClassALU},
	MUL:   {"MUL", FmtR, ClassMul},
	MULH:  {"MULH", FmtR, ClassMul},
	MULHU: {"MULHU", FmtR, ClassMul},
	DIV:   {"DIV", FmtR, ClassDiv},
	DIVU:  {"DIVU", FmtR, ClassDiv},
	REM:   {"REM", FmtR, ClassDiv},
	REMU:  {"REMU", FmtR, ClassDiv},
	ADDI:  {"ADDi", FmtI, ClassALU},
	ANDI:  {"ANDi", FmtI, ClassALU},
	ORI:   {"ORi", FmtI, ClassALU},
	XORI:  {"XORi", FmtI, ClassALU},
	SLLI:  {"SLLi", FmtI, ClassALU},
	SRLI:  {"SRLi", FmtI, ClassALU},
	SRAI:  {"SRAi", FmtI, ClassALU},
	SLTI:  {"SLTi", FmtI, ClassALU},
	SLTIU: {"SLTiu", FmtI, ClassALU},
	LUI:   {"LUI", FmtJ, ClassALU},
	LW:    {"LW", FmtI, ClassLoad},
	LH:    {"LH", FmtI, ClassLoad},
	LHU:   {"LHU", FmtI, ClassLoad},
	LB:    {"LB", FmtI, ClassLoad},
	LBU:   {"LBU", FmtI, ClassLoad},
	SW:    {"SW", FmtS, ClassStore},
	SH:    {"SH", FmtS, ClassStore},
	SB:    {"SB", FmtS, ClassStore},
	BEZ:   {"BEZ", FmtI, ClassBranch},
	BNZ:   {"BNZ", FmtI, ClassBranch},
	J:     {"J", FmtJ, ClassJump},
	JAL:   {"JAL", FmtJ, ClassJump},
	JR:    {"JR", FmtJR, ClassJump},
	JALR:  {"JALR", FmtJR, ClassJump},
	RMOV:  {"RMOV", FmtJR, ClassALU},
	SPADD: {"SPADD", FmtJ, ClassALU},
	SYS:   {"SYS", FmtS, ClassSys},
}

// String returns the canonical mnemonic.
func (o Op) String() string {
	if int(o) < len(opTable) {
		return opTable[o].name
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Format returns the encoding format of the opcode.
//
//lint:hotpath
func (o Op) Format() Format {
	if int(o) >= len(opTable) {
		return FmtN
	}
	return opTable[o].format
}

// Class returns the execution class of the opcode.
//
//lint:hotpath
func (o Op) Class() Class {
	if int(o) >= len(opTable) {
		return opTable[NOP].class
	}
	return opTable[o].class
}

// Inst is a decoded STRAIGHT instruction. Src1/Src2 are producer distances
// (0 = zero register); Imm holds the format-dependent immediate.
type Inst struct {
	Op   Op
	Src1 uint16
	Src2 uint16
	Imm  int32
}

// NumSources reports how many distance-addressed source operands the
// instruction reads (0, 1 or 2). Distance-0 sources still count: they read
// the zero register.
//
//lint:hotpath
func (i Inst) NumSources() int {
	switch i.Op.Format() {
	case FmtR, FmtS:
		return 2
	case FmtI, FmtJR:
		return 1
	default:
		return 0
	}
}

// IsControl reports whether the instruction can redirect the PC.
//
//lint:hotpath
func (i Inst) IsControl() bool {
	c := i.Op.Class()
	return c == ClassBranch || c == ClassJump
}

// WritesLink reports whether the instruction writes a return address.
func (i Inst) WritesLink() bool { return i.Op == JAL || i.Op == JALR }

// String renders the instruction in assembly syntax.
func (i Inst) String() string {
	switch i.Op.Format() {
	case FmtN:
		return i.Op.String()
	case FmtR:
		return fmt.Sprintf("%s [%d], [%d]", i.Op, i.Src1, i.Src2)
	case FmtI:
		return fmt.Sprintf("%s [%d], %d", i.Op, i.Src1, i.Imm)
	case FmtS:
		if i.Op == SYS {
			return fmt.Sprintf("SYS %d, [%d], [%d]", i.Imm, i.Src1, i.Src2)
		}
		return fmt.Sprintf("%s [%d], [%d], %d", i.Op, i.Src1, i.Src2, i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case FmtJR:
		return fmt.Sprintf("%s [%d]", i.Op, i.Src1)
	}
	return i.Op.String()
}

// Lookup resolves a mnemonic (case-insensitive for letters, as emitted by
// the paper's listings, e.g. "ADDi", "SLTiu") to its opcode.
func Lookup(mnemonic string) (Op, bool) {
	op, ok := mnemonicIndex[normalizeMnemonic(mnemonic)]
	return op, ok
}

var mnemonicIndex = func() map[string]Op {
	m := make(map[string]Op, numOps+4)
	for op := Op(0); op < numOps; op++ {
		m[normalizeMnemonic(opTable[op].name)] = op
	}
	// Aliases used by the paper's listings.
	m[normalizeMnemonic("LD")] = LW
	m[normalizeMnemonic("ST")] = SW
	return m
}()

func normalizeMnemonic(s string) string {
	b := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b[i] = c
	}
	return string(b)
}
