package riscvemu

import (
	"errors"
	"testing"

	"straight/internal/rasm"
)

// TestCheckpointRestore mirrors the straightemu checkpoint test: a mid-run
// snapshot must replay to the identical final state, repeatedly.
func TestCheckpointRestore(t *testing.T) {
	im, err := rasm.Assemble(`
main:
    addi sp, sp, -16
    addi t0, zero, 7
    sw   t0, 0(sp)
    lw   t1, 0(sp)
    mul  a0, t0, t1
    addi sp, sp, 16
    addi a7, zero, 0
    ecall
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp := m.Checkpoint()
	if cp.Count() != 3 {
		t.Fatalf("checkpoint count = %d, want 3", cp.Count())
	}
	for m.Step() == nil {
	}
	wantExited, wantCode := m.Exited()
	wantPC := m.PC()
	if !wantExited || wantCode != 49 {
		t.Fatalf("exit (%v,%d), want (true,49)", wantExited, wantCode)
	}
	for round := 0; round < 2; round++ {
		m.Restore(cp)
		if m.InstCount() != 3 {
			t.Fatalf("restored count = %d, want 3", m.InstCount())
		}
		for m.Step() == nil {
		}
		gotExited, gotCode := m.Exited()
		if gotExited != wantExited || gotCode != wantCode || m.PC() != wantPC {
			t.Fatalf("round %d: state (%v,%d,pc=%#x) != (%v,%d,pc=%#x)",
				round, gotExited, gotCode, m.PC(), wantExited, wantCode, wantPC)
		}
	}
}

// TestFaultKinds pins the riscvemu fault classification the lockstep
// oracle relies on to separate program faults from core divergence.
func TestFaultKinds(t *testing.T) {
	cases := []struct {
		name string
		src  string
		kind FaultKind
	}{
		{"misaligned-load", "main:\n addi t0, zero, 2\n lw t1, 0(t0)\n", FaultMisaligned},
		{"bad-sys", "main:\n addi a7, zero, 99\n ecall\n", FaultBadSys},
		{"insn-limit", "main:\n j main\n", FaultLimit},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			im, err := rasm.Assemble(c.src)
			if err != nil {
				t.Fatal(err)
			}
			m := New(im)
			_, err = m.Run(16)
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("expected *Fault, got %T: %v", err, err)
			}
			if f.Kind != c.kind {
				t.Errorf("fault kind = %v, want %v (%v)", f.Kind, c.kind, f)
			}
		})
	}
}
