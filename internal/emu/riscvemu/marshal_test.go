package riscvemu

import (
	"bytes"
	"testing"

	"straight/internal/rasm"
)

// marshalSrc loops with live stack traffic so a mid-run checkpoint
// carries non-trivial register, counter, and memory state.
const marshalSrc = `
main:
    addi sp, sp, -16
    addi t0, zero, 1234
    sw   t0, 0(sp)
    addi t1, zero, 10      # n
    addi t2, zero, 0       # acc
loop:
    beq  t1, zero, done
    add  t2, t2, t1
    addi t1, t1, -1
    j    loop
done:
    lw   t3, 0(sp)
    add  a0, t2, t3        # 55 + 1234 = 1289
    addi sp, sp, 16
    addi a7, zero, 0
    ecall
`

func marshalMachine(t *testing.T, steps int) (*Machine, *Checkpoint) {
	t.Helper()
	im, err := rasm.Assemble(marshalSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	for i := 0; i < steps; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return m, m.Checkpoint()
}

func finishRun(t *testing.T, m *Machine) (uint64, int32, uint32) {
	t.Helper()
	for m.Step() == nil {
	}
	exited, code := m.Exited()
	if !exited {
		t.Fatal("machine did not exit")
	}
	return m.InstCount(), code, m.PC()
}

// TestCheckpointMarshalRoundTrip: a decoded checkpoint must drive a
// machine to the identical final state as the original, and two
// checkpoints of the same architectural state must encode to identical
// bytes (the canonical-encoding property the content-addressed window
// cache relies on).
func TestCheckpointMarshalRoundTrip(t *testing.T) {
	m, ck := marshalMachine(t, 13)
	enc, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("two marshals of one checkpoint differ")
	}
	// A second, independent machine reaching the same state must encode
	// identically (canonical bytes, not pointer-dependent ones).
	_, ckB := marshalMachine(t, 13)
	encB, err := ckB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, encB) {
		t.Fatal("checkpoints of identical states encode differently")
	}

	var dec Checkpoint
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if dec.Count() != ck.Count() || dec.PC() != ck.PC() {
		t.Fatalf("decoded header (count=%d pc=%#x) != original (count=%d pc=%#x)",
			dec.Count(), dec.PC(), ck.Count(), ck.PC())
	}
	for i := 0; i < 32; i++ {
		if dec.Reg(i) != ck.Reg(i) {
			t.Fatalf("decoded x%d = %#x, original %#x", i, dec.Reg(i), ck.Reg(i))
		}
	}

	m.Restore(ck)
	wantCount, wantCode, wantPC := finishRun(t, m)
	if wantCode != 1289 {
		t.Fatalf("exit code = %d, want 1289", wantCode)
	}
	m.Restore(&dec)
	gotCount, gotCode, gotPC := finishRun(t, m)
	if gotCount != wantCount || gotCode != wantCode || gotPC != wantPC {
		t.Fatalf("decoded checkpoint replays to (count=%d code=%d pc=%#x), original to (count=%d code=%d pc=%#x)",
			gotCount, gotCode, gotPC, wantCount, wantCode, wantPC)
	}
}

// TestCheckpointUnmarshalCorrupted: every corruption class must be
// rejected, never silently half-loaded.
func TestCheckpointUnmarshalCorrupted(t *testing.T) {
	_, ck := marshalMachine(t, 13)
	enc, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), enc...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", enc[:10]},
		{"bad-magic", mut(func(b []byte) []byte { b[0] ^= 0xFF; return b })},
		{"bad-exited-flag", mut(func(b []byte) []byte { b[len(ckptMagic)+12] = 7; return b })},
		{"truncated-memory", enc[:len(enc)-5]},
		{"trailing-garbage", mut(func(b []byte) []byte { return append(b, 0xAB) })},
		{"inflated-page-count", mut(func(b []byte) []byte { b[ckptHeadSize]++; return b })},
	}
	for _, c := range cases {
		var dec Checkpoint
		if err := dec.UnmarshalBinary(c.data); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupted input", c.name)
		}
	}
}
