package riscvemu

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"straight/internal/rasm"
)

func run(t *testing.T, src string, max uint64) (*Machine, string) {
	t.Helper()
	im, err := rasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(im)
	var out bytes.Buffer
	m.SetOutput(&out)
	if _, err := m.Run(max); err != nil {
		t.Fatalf("run: %v\noutput so far: %q", err, out.String())
	}
	return m, out.String()
}

const exitSeq = `
    li a7, 0
    li a0, 0
    ecall
`

func TestArithmeticLoop(t *testing.T) {
	// Sum 1..10 = 55.
	src := `
main:
    li t0, 0        # sum
    li t1, 1        # i
    li t2, 10
loop:
    add t0, t0, t1
    addi t1, t1, 1
    ble: bge t2, t1, loop
    mv a0, t0
    li a7, 2        # puti
    ecall
` + exitSeq
	// "ble:" is a label here; keep it simple and use bge t2,t1 (10 >= i).
	_, out := run(t, src, 1000)
	if out != "55" {
		t.Errorf("sum output %q, want 55", out)
	}
}

func TestCallAndStack(t *testing.T) {
	src := `
main:
    li a0, 12
    li a1, 30
    call add2
    li a7, 2
    ecall
` + exitSeq + `
add2:
    addi sp, sp, -8
    sw ra, 4(sp)
    sw a0, 0(sp)
    lw t0, 0(sp)
    add a0, t0, a1
    lw ra, 4(sp)
    addi sp, sp, 8
    ret
`
	m, out := run(t, src, 1000)
	if out != "42" {
		t.Errorf("call output %q, want 42", out)
	}
	if m.Reg(2) != 0x7FFFF000 {
		t.Errorf("sp not restored: %#x", m.Reg(2))
	}
}

func TestGlobalDataAccess(t *testing.T) {
	src := `
    .data
tbl:
    .word 10, 20, 30
    .text
main:
    la t0, tbl
    lw t1, 4(t0)
    mv a0, t1
    li a7, 2
    ecall
` + exitSeq
	_, out := run(t, src, 100)
	if out != "20" {
		t.Errorf("data output %q, want 20", out)
	}
}

func TestHiLoAddressing(t *testing.T) {
	src := `
    .data
v:
    .word 777
    .text
main:
    lui t0, %hi(v)
    addi t0, t0, %lo(v)
    lw a0, 0(t0)
    li a7, 2
    ecall
` + exitSeq
	_, out := run(t, src, 100)
	if out != "777" {
		t.Errorf("hi/lo output %q, want 777", out)
	}
}

func TestSubWordMemory(t *testing.T) {
	src := `
    .data
buf:
    .word 0
    .text
main:
    la t0, buf
    li t1, -2
    sb t1, 0(t0)
    lbu a0, 0(t0)
    li a7, 5        # putx
    ecall
    lb a0, 0(t0)
    li a7, 2        # puti
    ecall
` + exitSeq
	_, out := run(t, src, 100)
	if out != "fe-2" {
		t.Errorf("subword output %q, want fe-2", out)
	}
}

func TestX0IsAlwaysZero(t *testing.T) {
	src := `
main:
    addi x0, x0, 55
    mv a0, x0
    li a7, 2
    ecall
` + exitSeq
	_, out := run(t, src, 100)
	if out != "0" {
		t.Errorf("x0 output %q, want 0", out)
	}
}

func TestFaults(t *testing.T) {
	im, err := rasm.Assemble("main:\n jalr x0, 0(x0)\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	m.Step()
	if err := m.Step(); err == nil {
		t.Error("expected fetch fault after jump to 0")
	}

	im2, _ := rasm.Assemble("main:\n li t0, 2\n lw t1, 0(t0)\n")
	m2 := New(im2)
	m2.Step()
	m2.Step()
	if err := m2.Step(); err == nil {
		t.Error("expected misaligned load fault")
	}

	im3, _ := rasm.Assemble("main:\n j main\n")
	m3 := New(im3)
	if _, err := m3.Run(64); err == nil {
		t.Error("expected instruction-limit error")
	}
}

func TestStepAfterExit(t *testing.T) {
	_, err := rasm.Assemble("main:\n" + exitSeq)
	if err != nil {
		t.Fatal(err)
	}
	im, _ := rasm.Assemble("main:\n" + exitSeq)
	m := New(im)
	m.Run(100)
	if err := m.Step(); err != io.EOF {
		t.Errorf("Step after exit: %v", err)
	}
}

func TestTraceAndStats(t *testing.T) {
	im, err := rasm.Assemble(`
main:
    li t0, 3
loop:
    addi t0, t0, -1
    bne t0, zero, loop
` + exitSeq)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	var n int
	m.TraceFn = func(r Retired) { n++ }
	m.Run(1000)
	if uint64(n) != m.InstCount() {
		t.Errorf("trace count %d vs retired %d", n, m.InstCount())
	}
	st := m.Stats()
	if st.Branches != 3 || st.TakenBranches != 2 {
		t.Errorf("branch stats: %d/%d", st.TakenBranches, st.Branches)
	}
}

func TestDisassembleSmoke(t *testing.T) {
	im, err := rasm.Assemble("main:\n addi a0, zero, 1\n sw a0, 4(sp)\n")
	if err != nil {
		t.Fatal(err)
	}
	dis := rasm.Disassemble(im)
	for _, want := range []string{"main:", "addi a0, zero, 1", "sw a0, 4(sp)"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

// TestCloneIndependence checks Clone for oracle replay.
func TestCloneIndependence(t *testing.T) {
	im, err := rasm.Assemble("main:\n li t0, 9\n li t1, 1\n li a7, 0\n li a0, 0\n ecall\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	m.Step()
	m.Step()
	c := m.Clone()
	if c.PC() != m.PC() || c.Reg(5) != m.Reg(5) {
		t.Fatal("clone state mismatch")
	}
	c.Step()
	if c.InstCount() == m.InstCount() {
		t.Error("clone must advance independently")
	}
	m.Mem().Store(0x20000000, 7, 4)
	if c.Mem().Load(0x20000000, 4) == 7 {
		t.Error("clone memory must be isolated")
	}
}
