// Package riscvemu implements the architectural (functional) model of
// RV32IM used to validate the superscalar baseline: the golden reference
// for the RISC-V compiler backend and the SS cycle core.
package riscvemu

import (
	"fmt"
	"io"
	"strconv"

	"straight/internal/isa/riscv"
	"straight/internal/program"
)

// FaultKind classifies an architectural fault so callers (in particular
// the differential fuzzer's oracle stack) can distinguish a malformed
// program from a genuine simulator divergence.
type FaultKind uint8

const (
	// FaultFetch: instruction fetch outside text or misaligned PC.
	FaultFetch FaultKind = iota
	// FaultDecode: illegal instruction word or EBREAK.
	FaultDecode
	// FaultMisaligned: misaligned data access or jump target.
	FaultMisaligned
	// FaultBadSys: unknown syscall function code.
	FaultBadSys
	// FaultLimit: the Run instruction limit was reached without exit.
	FaultLimit
)

var faultKindNames = [...]string{
	FaultFetch:      "fetch",
	FaultDecode:     "decode",
	FaultMisaligned: "misaligned",
	FaultBadSys:     "bad-sys",
	FaultLimit:      "insn-limit",
}

func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault is an architectural execution fault.
type Fault struct {
	Kind  FaultKind
	PC    uint32
	Count uint64
	Msg   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("riscvemu: %s fault at pc=%#08x insn#%d: %s", f.Kind, f.PC, f.Count, f.Msg)
}

// Syscall function codes, passed in a7 with the argument in a0. They
// mirror the STRAIGHT SYS functions so the same workload source produces
// identical console output on both ISAs.
const (
	SysExit  = 0
	SysPutc  = 1
	SysPuti  = 2
	SysCycle = 3
	SysPutu  = 4
	SysPutx  = 5
)

// Stats accumulates architectural execution statistics.
type Stats struct {
	Retired       [riscv.NumOps]uint64
	Branches      uint64
	TakenBranches uint64
	Loads         uint64
	Stores        uint64
}

// Total returns the total retired instruction count.
func (s *Stats) Total() uint64 {
	var t uint64
	for _, n := range s.Retired {
		t += n
	}
	return t
}

// Machine is an RV32IM architectural machine.
type Machine struct {
	image *program.Image
	mem   *program.Memory

	pc    uint32
	regs  [32]uint32
	count uint64

	exited   bool
	exitCode int32

	out   io.Writer //lint:resetless output attachment, survives Reset by design
	ioBuf []byte    // reusable console-output buffer (keeps syscalls allocation-free)
	stats Stats

	// dec caches the decode of every text word so Step pays the decoder
	// once per static instruction instead of once per dynamic one — the
	// dominant cost of the architectural loop when it serves as the
	// sampled simulator's fast-forward engine (DESIGN.md §16). riscv
	// decode is total (bad words decode to ILLEGAL), so no validity side
	// array is needed. Replaced wholesale, never mutated, so Clone shares.
	dec []riscv.Inst //lint:resetless predecoded text cache, keyed to the image; Reset rebuilds it on image change

	// TraceFn, when non-nil, receives every retired instruction.
	TraceFn func(Retired)
}

// Retired describes one architecturally executed instruction.
type Retired struct {
	Count  uint64
	PC     uint32
	Inst   riscv.Inst
	Result uint32 // value written to Rd (0 if none)
	NextPC uint32
	// MemAddr is the effective address of a load or store (else 0).
	MemAddr uint32
}

// New creates a machine for the image with an isolated memory copy.
// SP (x2) starts at the top of the stack.
func New(im *program.Image) *Machine {
	m := &Machine{
		image: im,
		mem:   program.NewMemory(),
		pc:    im.Entry,
		out:   io.Discard,
	}
	m.regs[riscv.RegSP] = program.DefaultStackTop
	m.mem.LoadImage(im)
	m.predecode()
	return m
}

// predecode decodes every text word once. A fresh slice is allocated on
// every rebuild so clones sharing the old cache stay consistent.
func (m *Machine) predecode() {
	dec := make([]riscv.Inst, len(m.image.Text))
	for i, w := range m.image.Text {
		dec[i] = riscv.Decode(w)
	}
	m.dec = dec
}

// Reset returns the machine to power-on state for img (nil = rerun the
// current image), reusing the sparse memory's page frames and the I/O
// buffer. Output is configuration and survives; TraceFn is cleared (it
// is re-armed per use).
func (m *Machine) Reset(img *program.Image) {
	if img == nil {
		img = m.image
	}
	rebuild := img != m.image || m.dec == nil
	m.image = img
	if rebuild {
		m.predecode()
	}
	m.mem.Reset()
	m.mem.LoadImage(img)
	m.pc = img.Entry
	m.regs = [32]uint32{}
	m.regs[riscv.RegSP] = program.DefaultStackTop
	m.count = 0
	m.exited = false
	m.exitCode = 0
	m.ioBuf = m.ioBuf[:0]
	m.stats = Stats{}
	m.TraceFn = nil
}

// SetOutput directs console syscall output to w.
func (m *Machine) SetOutput(w io.Writer) { m.out = w }

// Mem exposes the machine memory.
func (m *Machine) Mem() *program.Memory { return m.mem }

// PC returns the current program counter.
//
//lint:hotpath
func (m *Machine) PC() uint32 { return m.pc }

// Reg returns register x[i].
//
//lint:hotpath
func (m *Machine) Reg(i int) uint32 { return m.regs[i] }

// InstCount returns the retired instruction count.
func (m *Machine) InstCount() uint64 { return m.count }

// Exited reports whether the program executed the exit syscall.
//
//lint:hotpath
func (m *Machine) Exited() (bool, int32) { return m.exited, m.exitCode }

// Stats returns the accumulated statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

//lint:coldpath fault construction; a fault aborts the run
func (m *Machine) fault(kind FaultKind, msg string, args ...any) error {
	return &Fault{Kind: kind, PC: m.pc, Count: m.count, Msg: fmt.Sprintf(msg, args...)}
}

// Step executes one instruction. It returns io.EOF after exit.
//
//lint:hotpath
func (m *Machine) Step() error {
	if m.exited {
		return io.EOF
	}
	w, err := m.image.FetchWord(m.pc)
	if err != nil {
		return m.fault(FaultFetch, "%v", err)
	}
	var inst riscv.Inst
	if i := (m.pc - m.image.TextBase) / program.InstructionBytes; m.dec != nil {
		inst = m.dec[i]
	} else {
		inst = riscv.Decode(w)
	}
	op := inst.Op
	if op == riscv.ILLEGAL {
		return m.fault(FaultDecode, "illegal instruction %#08x", w)
	}

	rs1 := m.regs[inst.Rs1]
	rs2 := m.regs[inst.Rs2]
	nextPC := m.pc + 4
	var result uint32
	var memAddr uint32
	writes := inst.WritesRd()

	switch op.Class() {
	case riscv.ClassALU, riscv.ClassMul, riscv.ClassDiv:
		switch op {
		case riscv.LUI:
			result = uint32(inst.Imm)
		case riscv.AUIPC:
			result = m.pc + uint32(inst.Imm)
		case riscv.FENCE:
			// no-op
		default:
			b := rs2
			if isImmOp(op) {
				b = uint32(inst.Imm)
			}
			result = riscv.Eval(op, rs1, b)
		}
	case riscv.ClassLoad:
		addr := rs1 + uint32(inst.Imm)
		memAddr = addr
		width, _ := riscv.LoadWidth(op)
		if addr%uint32(width) != 0 {
			return m.fault(FaultMisaligned, "misaligned %s at %#08x", op, addr)
		}
		result = riscv.ExtendLoad(op, m.mem.Load(addr, width))
		m.stats.Loads++
	case riscv.ClassStore:
		addr := rs1 + uint32(inst.Imm)
		memAddr = addr
		width := riscv.StoreWidth(op)
		if addr%uint32(width) != 0 {
			return m.fault(FaultMisaligned, "misaligned %s at %#08x", op, addr)
		}
		m.mem.Store(addr, rs2, width)
		m.stats.Stores++
	case riscv.ClassBranch:
		m.stats.Branches++
		if riscv.BranchTaken(op, rs1, rs2) {
			m.stats.TakenBranches++
			nextPC = m.pc + uint32(inst.Imm)
		}
	case riscv.ClassJump:
		result = m.pc + 4
		if op == riscv.JAL {
			nextPC = m.pc + uint32(inst.Imm)
		} else {
			nextPC = (rs1 + uint32(inst.Imm)) &^ 1
		}
		if nextPC%4 != 0 {
			return m.fault(FaultMisaligned, "jump to misaligned address %#08x", nextPC)
		}
	case riscv.ClassSys:
		if op == riscv.EBREAK {
			return m.fault(FaultDecode, "ebreak")
		}
		if err := m.syscall(); err != nil {
			return err
		}
		if m.regs[riscv.RegA7] == SysCycle {
			result = uint32(m.count)
			writes = true
			inst.Rd = riscv.RegA0
		}
	}

	if writes && inst.Rd != 0 {
		m.regs[inst.Rd] = result
	}
	prevPC := m.pc
	m.pc = nextPC
	m.count++
	m.stats.Retired[op]++
	if m.TraceFn != nil {
		m.TraceFn(Retired{Count: m.count - 1, PC: prevPC, Inst: inst, Result: result, NextPC: nextPC, MemAddr: memAddr})
	}
	if m.exited {
		return io.EOF
	}
	return nil
}

func isImmOp(op riscv.Op) bool {
	switch op {
	case riscv.ADDI, riscv.SLTI, riscv.SLTIU, riscv.XORI, riscv.ORI, riscv.ANDI,
		riscv.SLLI, riscv.SRLI, riscv.SRAI:
		return true
	}
	return false
}

func (m *Machine) syscall() error {
	fn := m.regs[riscv.RegA7]
	arg := m.regs[riscv.RegA0]
	switch fn {
	case SysExit:
		m.exitCode = int32(arg)
		m.exited = true
	case SysPutc:
		if m.ioBuf == nil {
			m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
		}
		m.ioBuf = append(m.ioBuf[:0], byte(arg))
		m.out.Write(m.ioBuf)
	case SysPuti:
		if m.ioBuf == nil {
			m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
		}
		m.ioBuf = strconv.AppendInt(m.ioBuf[:0], int64(int32(arg)), 10)
		m.out.Write(m.ioBuf)
	case SysPutu:
		if m.ioBuf == nil {
			m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
		}
		m.ioBuf = strconv.AppendUint(m.ioBuf[:0], uint64(arg), 10)
		m.out.Write(m.ioBuf)
	case SysPutx:
		if m.ioBuf == nil {
			m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
		}
		m.ioBuf = strconv.AppendUint(m.ioBuf[:0], uint64(arg), 16)
		m.out.Write(m.ioBuf)
	case SysCycle:
		// handled by caller (writes a0)
	default:
		return m.fault(FaultBadSys, "unknown syscall %d", fn)
	}
	return nil
}

// Clone returns an independent copy of the architectural state (fresh
// statistics, discarded output) for oracle replay.
func (m *Machine) Clone() *Machine {
	n := &Machine{
		image:    m.image,
		mem:      m.mem.Clone(),
		pc:       m.pc,
		regs:     m.regs,
		count:    m.count,
		exited:   m.exited,
		exitCode: m.exitCode,
		out:      io.Discard,
		dec:      m.dec,
	}
	return n
}

// Checkpoint is an opaque snapshot of the architectural state (PC,
// registers, count, memory, exit status). Statistics and the output
// writer are not part of the snapshot.
type Checkpoint struct {
	pc       uint32
	regs     [32]uint32
	count    uint64
	mem      *program.Memory
	exited   bool
	exitCode int32
}

// Count returns the retired instruction count at which the checkpoint
// was taken.
func (c *Checkpoint) Count() uint64 { return c.count }

// PC returns the checkpointed program counter.
func (c *Checkpoint) PC() uint32 { return c.pc }

// Reg returns checkpointed register x[i].
func (c *Checkpoint) Reg(i int) uint32 { return c.regs[i] }

// Mem exposes the checkpointed memory. Callers must treat it as
// read-only: the checkpoint stays valid for further Restore calls.
func (c *Checkpoint) Mem() *program.Memory { return c.mem }

// Exited reports the checkpointed exit status.
func (c *Checkpoint) Exited() (bool, int32) { return c.exited, c.exitCode }

// Checkpoint captures the architectural state so execution can later be
// rewound with Restore. The snapshot is independent of the machine and
// can be restored any number of times.
func (m *Machine) Checkpoint() *Checkpoint {
	return &Checkpoint{
		pc: m.pc, regs: m.regs, count: m.count,
		mem: m.mem.Clone(), exited: m.exited, exitCode: m.exitCode,
	}
}

// Restore rewinds the machine to a checkpoint taken earlier on the same
// image, reusing the machine's page frames rather than reallocating.
// The checkpoint remains valid for further Restore calls.
func (m *Machine) Restore(c *Checkpoint) {
	m.pc, m.regs, m.count = c.pc, c.regs, c.count
	m.mem.CopyFrom(c.mem)
	m.exited, m.exitCode = c.exited, c.exitCode
}

// Run executes until exit, a fault, or maxInsns instructions. Reaching
// the limit without exit is an error.
func (m *Machine) Run(maxInsns uint64) (uint64, error) {
	start := m.count
	for m.count-start < maxInsns {
		if err := m.Step(); err != nil {
			if err == io.EOF {
				return m.count - start, nil
			}
			return m.count - start, err
		}
	}
	return m.count - start, m.fault(FaultLimit, "instruction limit %d reached without exit", maxInsns)
}

// RunUntil executes until the retired instruction count reaches target,
// the program exits, or a fault occurs. Unlike Run, stopping at the
// target is success, not an error: this is the fast-forward primitive of
// the sampled simulator (internal/sampling), which pauses execution at
// interval boundaries to take checkpoints. Step executes exactly one
// instruction, so the stop lands exactly on target.
//
//lint:hotpath
func (m *Machine) RunUntil(target uint64) error {
	for m.count < target && !m.exited {
		if err := m.Step(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}
