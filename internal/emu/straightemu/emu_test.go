package straightemu

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"straight/internal/isa/straight"
	"straight/internal/sasm"
)

func run(t *testing.T, src string, max uint64) (*Machine, string) {
	t.Helper()
	im, err := sasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := New(im)
	var out bytes.Buffer
	m.SetOutput(&out)
	if _, err := m.Run(max); err != nil {
		t.Fatalf("run: %v\noutput so far: %q", err, out.String())
	}
	return m, out.String()
}

// TestFibonacciStraightLine reproduces the paper's Fig 1 example: repeated
// "ADD [1] [2]" computes a Fibonacci series.
func TestFibonacciStraightLine(t *testing.T) {
	src := `
main:
    ADDi [0], 0
    ADDi [0], 1
    ADD [1], [2]
    ADD [1], [2]
    ADD [1], [2]
    ADD [1], [2]
    ADD [1], [2]
    SYS puti, [1]
    ADDi [0], 0
    SYS exit, [1]
`
	_, out := run(t, src, 100)
	if out != "8" { // 0 1 1 2 3 5 8
		t.Errorf("fib output %q, want 8", out)
	}
}

// TestFibonacciLoop exercises a loop with a distance-fixed register frame,
// including the NOP that equalizes the fall-through entry path against the
// back-edge J (paper §IV-C2).
func TestFibonacciLoop(t *testing.T) {
	src := `
main:
    ADDi [0], 0      # a = 0
    ADDi [0], 1      # b = 1
    ADDi [0], 10     # n = 10
    NOP              # distance fixing vs back-edge J
loop:                # frame: [2]=n, [3]=b, [4]=a
    BEZ [2], done
    ADD [4], [5]     # t = b + a
    ADDi [4], -1     # n-1
    RMOV [6]         # a' = old b
    RMOV [3]         # b' = t
    RMOV [3]         # n' = n-1
    J loop
done:                # [1]=BEZ, [2]=NOP/J, [3]=n, [4]=b, [5]=a
    SYS puti, [4]
    ADDi [0], 0
    SYS exit, [1]
`
	m, out := run(t, src, 1000)
	if out != "89" { // fib(11) with fib(1)=fib(2)=1
		t.Errorf("loop fib output %q, want 89", out)
	}
	if m.Stats().Retired[straight.RMOV] != 30 {
		t.Errorf("RMOV count %d, want 30 (3 per 10 iterations)", m.Stats().Retired[straight.RMOV])
	}
	if ex, code := m.Exited(); !ex || code != 0 {
		t.Errorf("exit state: %v %d", ex, code)
	}
}

// TestCallingConvention checks the paper's Fig 5/6 scheme: producers of
// arguments sit immediately before JAL; the callee addresses them by fixed
// distance; JR returns via the JAL link value; the caller picks up the
// return value at a fixed distance after JR.
func TestCallingConvention(t *testing.T) {
	src := `
main:
    ADDi [0], 30     # arg1
    ADDi [0], 12     # arg0
    JAL add2         # callee: [1]=JAL, [2]=arg0, [3]=arg1
    ADDi [2], 0      # after return: [1]=JR, [2]=retval0
    SYS puti, [1]
    ADDi [0], 0
    SYS exit, [1]
add2:
    ADD [2], [3]     # arg0 + arg1  (retval0)
    JR [2]           # return via JAL link at distance 2
`
	_, out := run(t, src, 100)
	if out != "42" {
		t.Errorf("call output %q, want 42", out)
	}
}

// TestSPADDAndStackFrame exercises SPADD-relative frame access (paper Fig
// 10(c) pattern): a value is stored across a region and reloaded.
func TestSPADDAndStackFrame(t *testing.T) {
	src := `
main:
    SPADD -8         # open frame; result = new SP
    ADDi [0], 1234
    ST [2], [1]      # mem[SP+0] = 1234
    ADDi [0], 0      # clobber window with unrelated work
    ADDi [0], 0
    LD [5], 0        # reload via the SPADD result at distance 5
    SYS puti, [1]
    SPADD 8          # close frame
    ADDi [0], 0
    SYS exit, [1]
`
	m, out := run(t, src, 100)
	if out != "1234" {
		t.Errorf("stack output %q, want 1234", out)
	}
	if m.SP() != 0x7FFFF000 {
		t.Errorf("SP not restored: %#x", m.SP())
	}
}

func TestStoreReturnsValueAndSubWordAccess(t *testing.T) {
	src := `
main:
    LUI hi(buf)
    ORi [1], lo(buf)
    ADDi [0], -2     # 0xFFFFFFFE
    SB [2], [1], 0   # store low byte 0xFE; store result = value
    SYS putx, [1]    # print the store's own result
    LBU [5], 0       # reload zero-extended byte  (buf addr at distance 5... see below)
    SYS putx, [1]
    LB [7], 0        # reload sign-extended
    SYS puti, [1]
    ADDi [0], 0
    SYS exit, [1]
    .data
buf:
    .word 0
`
	// Distances: at LBU, producers are: [1]=putx, [2]=SB, [3]=ADDi(-2),
	// [4]=ORi (address), [5]=LUI. The ORi result is the full address at
	// distance 4 from LBU; adjust the source to use [4].
	src = replaceOnce(src, "LBU [5], 0", "LBU [4], 0")
	// At LB, ORi is at distance 6.
	src = replaceOnce(src, "LB [7], 0", "LB [6], 0")
	_, out := run(t, src, 100)
	if out != "fffffffefe-2" {
		t.Errorf("subword output %q, want fffffffefe-2", out)
	}
}

func replaceOnce(s, old, new string) string {
	return string(bytes.Replace([]byte(s), []byte(old), []byte(new), 1))
}

func TestDistanceStats(t *testing.T) {
	m, _ := run(t, `
main:
    ADDi [0], 1
    ADDi [0], 2
    ADD [1], [2]
    SYS exit, [0]
`, 10)
	st := m.Stats()
	if st.DistanceHist[1] != 1 || st.DistanceHist[2] != 1 {
		t.Errorf("distance hist: d1=%d d2=%d", st.DistanceHist[1], st.DistanceHist[2])
	}
	if st.MaxObservedDistance != 2 {
		t.Errorf("max distance %d", st.MaxObservedDistance)
	}
	if st.Total() != 4 {
		t.Errorf("total retired %d", st.Total())
	}
}

func TestFaults(t *testing.T) {
	// Jump outside text.
	im, err := sasm.Assemble("main:\n JR [0]\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	m.Step() // JR to address 0
	if err := m.Step(); err == nil {
		t.Error("expected fetch fault after jump to 0")
	}

	// Misaligned load.
	im2, err := sasm.Assemble("main:\n ADDi [0], 2\n LD [1], 0\n")
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(im2)
	m2.Step()
	if err := m2.Step(); err == nil {
		t.Error("expected misaligned load fault")
	}

	// Instruction limit without exit.
	im3, err := sasm.Assemble("main:\n J main\n")
	if err != nil {
		t.Fatal(err)
	}
	m3 := New(im3)
	if _, err := m3.Run(100); err == nil {
		t.Error("expected instruction-limit error")
	}
}

func TestStepAfterExitReturnsEOF(t *testing.T) {
	m, _ := run(t, "main:\n ADDi [0], 0\n SYS exit, [1]\n", 10)
	if err := m.Step(); err != io.EOF {
		t.Errorf("Step after exit: %v, want io.EOF", err)
	}
}

// TestZeroRegister verifies that distance 0 always reads zero, even after
// many instructions have produced values.
func TestZeroRegister(t *testing.T) {
	_, out := run(t, `
main:
    ADDi [0], 99
    ADDi [0], 99
    ADD [0], [0]
    SYS puti, [1]
    SYS exit, [0]
`, 10)
	if out != "0" {
		t.Errorf("zero register output %q", out)
	}
}

// TestTraceCallback checks the retirement trace hook used for
// cross-validation by the cycle core.
func TestTraceCallback(t *testing.T) {
	im, err := sasm.Assemble("main:\n ADDi [0], 5\n ADDi [1], 1\n SYS exit, [0]\n")
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	var trace []Retired
	m.TraceFn = func(r Retired) { trace = append(trace, r) }
	m.Run(10)
	if len(trace) != 3 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[0].Result != 5 || trace[1].Result != 6 {
		t.Errorf("trace results: %d %d", trace[0].Result, trace[1].Result)
	}
	if trace[1].Count != 1 || trace[1].PC != im.Entry+4 {
		t.Errorf("trace metadata: %+v", trace[1])
	}
}

// TestCloneIndependence checks Clone for oracle replay: the copy must
// carry the full architectural state but evolve independently.
func TestCloneIndependence(t *testing.T) {
	im, err := sasm.Assemble(`
main:
    ADDi [0], 5
    ADDi [1], 1
    ADDi [1], 1
    SYS exit, [1]
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	m.Step()
	m.Step()
	c := m.Clone()
	if c.PC() != m.PC() || c.InstCount() != m.InstCount() {
		t.Fatal("clone state mismatch")
	}
	if c.Reg(1) != m.Reg(1) {
		t.Fatal("clone window mismatch")
	}
	// Advance the clone only.
	c.Step()
	if c.InstCount() == m.InstCount() {
		t.Error("clone must advance independently")
	}
	// Memory isolation.
	m.Mem().Store(0x20000000, 42, 4)
	if c.Mem().Load(0x20000000, 4) == 42 {
		t.Error("clone memory must be isolated")
	}
}

// TestStrictModeNeverWrittenSlot: reading a slot older than the first
// executed instruction faults in strict mode but silently reads zero
// otherwise.
func TestStrictModeNeverWrittenSlot(t *testing.T) {
	im, err := sasm.Assemble("main:\n ADD [1], [2]\n SYS exit, [0]\n")
	if err != nil {
		t.Fatal(err)
	}
	// Non-strict: the ring is zero-initialized, so the program runs.
	if _, err := New(im).Run(100); err != nil {
		t.Fatalf("non-strict run: %v", err)
	}
	m := New(im)
	m.SetStrict(0)
	_, err = m.Run(100)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("strict run: got %v, want Fault", err)
	}
	if f.PC != im.Entry {
		t.Errorf("fault PC %#x, want entry %#x", f.PC, im.Entry)
	}
}

// TestStrictModeOverBound: a read beyond the configured distance bound
// faults only in strict mode.
func TestStrictModeOverBound(t *testing.T) {
	src := `main:
 ADDi [0], 1
 ADDi [0], 2
 ADDi [0], 3
 ADDi [0], 4
 ADDi [0], 5
 RMOV [5]
 SYS exit, [0]
`
	im, err := sasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(im).Run(100); err != nil {
		t.Fatalf("non-strict run: %v", err)
	}
	m := New(im)
	m.SetStrict(4)
	_, err = m.Run(100)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("strict run at bound 4: got %v, want Fault", err)
	}
	// At bound 5 the same program is legal.
	m = New(im)
	m.SetStrict(5)
	if _, err := m.Run(100); err != nil {
		t.Fatalf("strict run at bound 5: %v", err)
	}
}

// TestStrictModeAcceptsValidProgram: strict mode is transparent for
// well-formed code, including across calls.
func TestStrictModeAcceptsValidProgram(t *testing.T) {
	src := `main:
 ADDi [0], 20
 JAL double
 SYS exit, [0]
double:
 ADD [2], [2]
 JR [2]
`
	im, err := sasm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	m.SetStrict(31)
	if _, err := m.Run(100); err != nil {
		t.Fatalf("strict run: %v", err)
	}
	if ok, _ := m.Exited(); !ok {
		t.Fatal("program did not exit")
	}
}
