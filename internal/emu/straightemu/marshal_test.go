package straightemu

import (
	"bytes"
	"testing"

	"straight/internal/sasm"
)

// marshalSrc loops with an open stack frame and live memory traffic, so
// a mid-run checkpoint carries non-trivial SP, ring, and heap state.
const marshalSrc = `
main:
    SPADD -8         # open frame; result = new SP
    ADDi [0], 1234
    ST [2], [1]      # mem[SP+0] = 1234 (touches a fresh stack page)
    ADDi [0], 0      # a = 0
    ADDi [0], 1      # b = 1
    ADDi [0], 10     # n = 10
    NOP              # distance fixing vs back-edge J
loop:                # frame: [2]=n, [3]=b, [4]=a
    BEZ [2], done
    ADD [4], [5]     # t = b + a
    ADDi [4], -1     # n-1
    RMOV [6]         # a' = old b
    RMOV [3]         # b' = t
    RMOV [3]         # n' = n-1
    J loop
done:
    SYS puti, [4]    # fib result
    SPADD 0          # result = SP (frame base)
    LD [1], 0        # reload the 1234 spilled before the loop
    SYS puti, [1]
    SPADD 8          # close frame
    ADDi [0], 0
    SYS exit, [1]
`

func marshalMachine(t *testing.T, steps int) (*Machine, *Checkpoint) {
	t.Helper()
	im, err := sasm.Assemble(marshalSrc)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im)
	for i := 0; i < steps; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return m, m.Checkpoint()
}

func finish(t *testing.T, m *Machine, out *bytes.Buffer) (uint64, int32, string) {
	t.Helper()
	m.SetOutput(out)
	if _, err := m.Run(100_000); err != nil {
		t.Fatal(err)
	}
	_, code := m.Exited()
	return m.InstCount(), code, out.String()
}

// TestCheckpointMarshalRoundTrip: a decoded checkpoint must drive a
// machine to the identical final state as the original, and two
// checkpoints of the same architectural state must encode to identical
// bytes (the canonical-encoding property the content-addressed window
// cache relies on).
func TestCheckpointMarshalRoundTrip(t *testing.T) {
	m, ck := marshalMachine(t, 17)
	enc, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("two marshals of one checkpoint differ")
	}
	// A second, independent machine reaching the same state must encode
	// identically (canonical bytes, not pointer-dependent ones).
	_, ckB := marshalMachine(t, 17)
	encB, err := ckB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, encB) {
		t.Fatal("checkpoints of identical states encode differently")
	}

	var dec Checkpoint
	if err := dec.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	if dec.Count() != ck.Count() || dec.PC() != ck.PC() || dec.SP() != ck.SP() {
		t.Fatalf("decoded header (count=%d pc=%#x sp=%#x) != original (count=%d pc=%#x sp=%#x)",
			dec.Count(), dec.PC(), dec.SP(), ck.Count(), ck.PC(), ck.SP())
	}

	var wantOut, gotOut bytes.Buffer
	m.Restore(ck)
	wantCount, wantCode, want := finish(t, m, &wantOut)
	m.Restore(&dec)
	gotCount, gotCode, got := finish(t, m, &gotOut)
	if gotCount != wantCount || gotCode != wantCode || got != want {
		t.Fatalf("decoded checkpoint replays to (count=%d code=%d out=%q), original to (count=%d code=%d out=%q)",
			gotCount, gotCode, got, wantCount, wantCode, want)
	}
}

// TestCheckpointUnmarshalCorrupted: every corruption class must be
// rejected, never silently half-loaded.
func TestCheckpointUnmarshalCorrupted(t *testing.T) {
	_, ck := marshalMachine(t, 17)
	enc, err := ck.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), enc...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated-header", enc[:10]},
		{"bad-magic", mut(func(b []byte) []byte { b[0] ^= 0xFF; return b })},
		{"bad-exited-flag", mut(func(b []byte) []byte { b[len(ckptMagic)+16] = 7; return b })},
		{"truncated-memory", enc[:len(enc)-5]},
		{"trailing-garbage", mut(func(b []byte) []byte { return append(b, 0xAB) })},
		{"inflated-page-count", mut(func(b []byte) []byte { b[ckptHeadSize]++; return b })},
	}
	for _, c := range cases {
		var dec Checkpoint
		if err := dec.UnmarshalBinary(c.data); err == nil {
			t.Errorf("%s: UnmarshalBinary accepted corrupted input", c.name)
		}
	}
}
