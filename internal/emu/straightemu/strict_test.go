package straightemu

import (
	"errors"
	"io"
	"testing"

	"straight/internal/isa/straight"
	"straight/internal/program"
)

func image(words ...uint32) *program.Image {
	im := program.New()
	im.Entry = im.TextBase
	im.Text = words
	return im
}

func enc(inst straight.Inst) uint32 { return straight.MustEncode(inst) }

func nops(n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = enc(straight.Inst{Op: straight.NOP})
	}
	return out
}

// TestStrictFaultKinds drives every fault class the fuzzer's oracle must
// distinguish: each program triggers exactly one fault of the expected
// kind at the expected dynamic instruction. The table covers every
// source-reading format (FmtR, FmtI, FmtS src1/src2, FmtJR) so no read
// path can silently wrap instead of faulting in strict mode.
func TestStrictFaultKinds(t *testing.T) {
	type tc struct {
		name   string
		text   []uint32
		strict int // 0 = strict at ISA max; -1 = strict off
		kind   FaultKind
		count  uint64 // dynamic instruction count at the fault
	}
	cases := []tc{
		{
			// First instruction reads [1]: nothing has been written yet.
			name:   "uninit-fmtI",
			text:   []uint32{enc(straight.Inst{Op: straight.ADDI, Src1: 1, Imm: 0})},
			strict: 0, kind: FaultStrictUninit, count: 0,
		},
		{
			// FmtR src2 reaches one slot before program entry.
			name: "uninit-fmtR-src2",
			text: append(nops(2),
				enc(straight.Inst{Op: straight.ADD, Src1: 1, Src2: 3})),
			strict: 0, kind: FaultStrictUninit, count: 2,
		},
		{
			// FmtJR: JR of a never-written slot faults before jumping.
			name:   "uninit-fmtJR",
			text:   []uint32{enc(straight.Inst{Op: straight.JR, Src1: 2})},
			strict: 0, kind: FaultStrictUninit, count: 0,
		},
		{
			// Store value operand (FmtS src2) past the bound: 33 producers
			// exist, but the bound is 31.
			name: "over-bound-store-src2",
			text: append(nops(33),
				enc(straight.Inst{Op: straight.SW, Src1: 0, Src2: 32, Imm: 0})),
			strict: 31, kind: FaultStrictBound, count: 33,
		},
		{
			// Distance exactly at the bound is legal; bound+1 faults.
			name: "over-bound-fmtI",
			text: append(nops(40),
				enc(straight.Inst{Op: straight.ORI, Src1: 32, Imm: 1})),
			strict: 31, kind: FaultStrictBound, count: 40,
		},
		{
			// SYS argument read of a never-written slot (FmtS via SYS).
			name:   "uninit-sys-arg",
			text:   []uint32{enc(straight.Inst{Op: straight.SYS, Src1: 1, Imm: straight.SysPuti})},
			strict: 0, kind: FaultStrictUninit, count: 0,
		},
		{
			// Misaligned word load (address 2).
			name:   "misaligned-load",
			text:   []uint32{enc(straight.Inst{Op: straight.LW, Src1: 0, Imm: 2})},
			strict: -1, kind: FaultMisaligned, count: 0,
		},
		{
			// Misaligned store (address 6).
			name: "misaligned-store",
			text: []uint32{
				enc(straight.Inst{Op: straight.ADDI, Src1: 0, Imm: 6}),
				enc(straight.Inst{Op: straight.SH, Src1: 1, Src2: 0, Imm: 1}),
			},
			strict: -1, kind: FaultMisaligned, count: 1,
		},
		{
			// JR to a non-multiple-of-4 target.
			name: "misaligned-jump",
			text: []uint32{
				enc(straight.Inst{Op: straight.ADDI, Src1: 0, Imm: 2}),
				enc(straight.Inst{Op: straight.JR, Src1: 1}),
			},
			strict: -1, kind: FaultMisaligned, count: 1,
		},
		{
			// Unknown SYS function code 9.
			name:   "bad-sys",
			text:   []uint32{enc(straight.Inst{Op: straight.SYS, Imm: 9})},
			strict: -1, kind: FaultBadSys, count: 0,
		},
		{
			// Undecodable opcode byte.
			name:   "bad-decode",
			text:   []uint32{0xFF00_0000},
			strict: -1, kind: FaultDecode, count: 0,
		},
		{
			// Direct jump off the end of text: the redirect itself is legal,
			// the next fetch faults.
			name:   "fetch-outside-text",
			text:   []uint32{enc(straight.Inst{Op: straight.J, Imm: 100})},
			strict: -1, kind: FaultFetch, count: 1,
		},
		{
			// Self-loop never exits: the Run bound reports a limit fault.
			name:   "insn-limit",
			text:   []uint32{enc(straight.Inst{Op: straight.J, Imm: 0})},
			strict: -1, kind: FaultLimit, count: 16,
		},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			m := New(image(c.text...))
			if c.strict >= 0 {
				m.SetStrict(c.strict)
			}
			limit := uint64(100)
			if c.kind == FaultLimit {
				limit = 16
			}
			_, err := m.Run(limit)
			if err == nil {
				t.Fatalf("expected a %v fault, ran clean", c.kind)
			}
			var f *Fault
			if !errors.As(err, &f) {
				t.Fatalf("expected *Fault, got %T: %v", err, err)
			}
			if f.Kind != c.kind {
				t.Errorf("fault kind = %v, want %v (%v)", f.Kind, c.kind, f)
			}
			if f.Count != c.count {
				t.Errorf("fault at insn#%d, want insn#%d (%v)", f.Count, c.count, f)
			}
		})
	}
}

// TestStrictBoundaryReads pins the strict-mode boundary conditions the
// fuzzer generates on purpose: distance 0 always reads zero, a distance
// exactly equal to both the bound and the executed count is legal, and
// the same program runs clean without strict mode where strict mode
// faults (so the oracle can attribute the fault to the program, not the
// emulator).
func TestStrictBoundaryReads(t *testing.T) {
	// 31 NOPs then a read at exactly distance 31 with bound 31.
	text := append(nops(31),
		enc(straight.Inst{Op: straight.RMOV, Src1: 31}),
		enc(straight.Inst{Op: straight.ADD, Src1: 0, Src2: 0}), // [0] zero reads
		enc(straight.Inst{Op: straight.SYS, Src1: 0, Imm: straight.SysExit}))
	m := New(image(text...))
	m.SetStrict(31)
	if _, err := m.Run(100); err != nil {
		t.Fatalf("boundary read at exactly the bound must not fault: %v", err)
	}
	if ok, code := m.Exited(); !ok || code != 0 {
		t.Fatalf("exited=%v code=%d", ok, code)
	}

	// The over-bound variant faults strictly but wraps silently (by
	// design) without strict mode.
	text2 := append(nops(33),
		enc(straight.Inst{Op: straight.RMOV, Src1: 32}),
		enc(straight.Inst{Op: straight.ADDI, Src1: 0, Imm: 0}),
		enc(straight.Inst{Op: straight.SYS, Src1: 1, Imm: straight.SysExit}))
	strictM := New(image(text2...))
	strictM.SetStrict(31)
	if _, err := strictM.Run(100); err == nil {
		t.Fatal("strict mode must fault on the over-bound read")
	}
	loose := New(image(text2...))
	if _, err := loose.Run(100); err != nil {
		t.Fatalf("non-strict mode must tolerate the over-bound read: %v", err)
	}
}

// TestCheckpointRestore exercises the step-wise checkpoint API: rewinding
// to a mid-run snapshot and replaying must reproduce the identical
// retirement stream and final state, and the checkpoint must stay valid
// across multiple restores.
func TestCheckpointRestore(t *testing.T) {
	// A program with memory traffic and SP updates so the snapshot covers
	// every architectural component.
	text := []uint32{
		enc(straight.Inst{Op: straight.SPADD, Imm: -16}),
		enc(straight.Inst{Op: straight.ADDI, Src1: 0, Imm: 7}),
		enc(straight.Inst{Op: straight.SW, Src1: 2, Src2: 1, Imm: 0}), // mem[sp] = 7
		enc(straight.Inst{Op: straight.LW, Src1: 3, Imm: 0}),          // reload
		enc(straight.Inst{Op: straight.MUL, Src1: 1, Src2: 3}),
		enc(straight.Inst{Op: straight.SPADD, Imm: 16}),
		enc(straight.Inst{Op: straight.SYS, Src1: 2, Imm: straight.SysExit}),
	}
	m := New(image(text...))
	m.SetStrict(0)

	var first []Retired
	m.TraceFn = func(r Retired) { first = append(first, r) }
	for i := 0; i < 3; i++ {
		if err := m.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp := m.Checkpoint()
	if cp.Count() != 3 {
		t.Fatalf("checkpoint count = %d, want 3", cp.Count())
	}
	for m.Step() == nil {
	}
	wantExited, wantCode := m.Exited()
	wantStream := append([]Retired(nil), first...)

	for round := 0; round < 2; round++ {
		m.Restore(cp)
		first = first[:3]
		if m.InstCount() != 3 {
			t.Fatalf("restored count = %d, want 3", m.InstCount())
		}
		for m.Step() == nil {
		}
		gotExited, gotCode := m.Exited()
		if gotExited != wantExited || gotCode != wantCode {
			t.Fatalf("round %d: exit (%v,%d) != (%v,%d)", round, gotExited, gotCode, wantExited, wantCode)
		}
		if len(first) != len(wantStream) {
			t.Fatalf("round %d: stream length %d != %d", round, len(first), len(wantStream))
		}
		for i := range first {
			if first[i] != wantStream[i] {
				t.Fatalf("round %d: retirement %d differs: %+v != %+v", round, i, first[i], wantStream[i])
			}
		}
	}
	_ = io.Discard
}
