package straightemu

import (
	"encoding/binary"
	"fmt"

	"straight/internal/program"
)

// Binary checkpoint serialization (DESIGN.md §16). The encoding is
// canonical — a given architectural state always produces identical
// bytes — because the sampled simulator content-addresses sample windows
// by checkpoint hash: two runs that reach the same state must map to the
// same result-store key. The memory encoding (program.Memory) sorts
// pages and omits all-zero frames to guarantee this.

// ckptMagic identifies a serialized STRAIGHT checkpoint and versions the
// layout; bump the digit when the encoding changes shape.
const ckptMagic = "STRCKP1\x00"

// ckptHeadSize is the fixed-size portion: magic, pc, sp, count, exited,
// exitCode, and the result-window ring.
const ckptHeadSize = len(ckptMagic) + 4 + 4 + 8 + 1 + 4 + ringSize*4

// MarshalBinary serializes the checkpoint.
func (c *Checkpoint) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, ckptHeadSize+c.mem.MappedBytes()+64)
	b = append(b, ckptMagic...)
	b = binary.LittleEndian.AppendUint32(b, c.pc)
	b = binary.LittleEndian.AppendUint32(b, c.sp)
	b = binary.LittleEndian.AppendUint64(b, c.count)
	if c.exited {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(c.exitCode))
	for _, v := range c.ring {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return c.mem.AppendBinary(b), nil
}

// UnmarshalBinary replaces c with the checkpoint serialized in data,
// validating the magic, the framing, and that no bytes trail the
// encoding.
func (c *Checkpoint) UnmarshalBinary(data []byte) error {
	if len(data) < ckptHeadSize {
		return fmt.Errorf("straightemu: checkpoint decode: %d bytes, want at least %d", len(data), ckptHeadSize)
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return fmt.Errorf("straightemu: checkpoint decode: bad magic %q", data[:len(ckptMagic)])
	}
	p := data[len(ckptMagic):]
	c.pc = binary.LittleEndian.Uint32(p)
	c.sp = binary.LittleEndian.Uint32(p[4:])
	c.count = binary.LittleEndian.Uint64(p[8:])
	switch p[16] {
	case 0:
		c.exited = false
	case 1:
		c.exited = true
	default:
		return fmt.Errorf("straightemu: checkpoint decode: bad exited flag %d", p[16])
	}
	c.exitCode = int32(binary.LittleEndian.Uint32(p[17:]))
	p = p[21:]
	for i := range c.ring {
		c.ring[i] = binary.LittleEndian.Uint32(p[i*4:])
	}
	if c.mem == nil {
		c.mem = program.NewMemory()
	}
	rest, err := c.mem.DecodeBinary(p[ringSize*4:])
	if err != nil {
		return fmt.Errorf("straightemu: checkpoint decode: %w", err)
	}
	if len(rest) != 0 {
		return fmt.Errorf("straightemu: checkpoint decode: %d trailing bytes", len(rest))
	}
	return nil
}
