// Package straightemu implements the architectural (functional) model of
// the STRAIGHT ISA. It is the golden reference: the compiler test suite
// checks generated code against it, and the cycle-accurate core
// cross-validates every retired instruction against it.
//
// Architecturally, STRAIGHT state is: the PC, the stack pointer SP, the
// memory, and the results of the last MaxDistance dynamically executed
// instructions (a sliding window — each instruction writes exactly one new
// value and the oldest becomes dead). The emulator models the window as a
// ring buffer indexed by the dynamic instruction count.
package straightemu

import (
	"fmt"
	"io"
	"strconv"

	"straight/internal/isa/straight"
	"straight/internal/program"
)

// FaultKind classifies an architectural fault so callers (in particular
// the differential fuzzer's oracle stack) can distinguish a malformed
// program or a generator bug from a genuine simulator divergence.
type FaultKind uint8

const (
	// FaultFetch: instruction fetch outside text or misaligned PC.
	FaultFetch FaultKind = iota
	// FaultDecode: undecodable instruction word or unimplemented opcode.
	FaultDecode
	// FaultStrictBound (strict mode): a source read beyond the distance
	// bound.
	FaultStrictBound
	// FaultStrictUninit (strict mode): a source read of a slot no
	// instruction has written yet.
	FaultStrictUninit
	// FaultMisaligned: misaligned data access or jump target.
	FaultMisaligned
	// FaultBadSys: unknown SYS function code.
	FaultBadSys
	// FaultLimit: the Run instruction limit was reached without exit.
	FaultLimit
)

var faultKindNames = [...]string{
	FaultFetch:        "fetch",
	FaultDecode:       "decode",
	FaultStrictBound:  "strict-over-bound",
	FaultStrictUninit: "strict-uninitialized",
	FaultMisaligned:   "misaligned",
	FaultBadSys:       "bad-sys",
	FaultLimit:        "insn-limit",
}

func (k FaultKind) String() string {
	if int(k) < len(faultKindNames) {
		return faultKindNames[k]
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// Fault is an architectural execution fault (bad fetch, bad opcode,
// distance beyond the window, misaligned access).
type Fault struct {
	Kind  FaultKind
	PC    uint32
	Count uint64
	Msg   string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("straightemu: %s fault at pc=%#08x insn#%d: %s", f.Kind, f.PC, f.Count, f.Msg)
}

// ringSize is the result-window ring size; it must exceed MaxDistance and
// be a power of two so the index math is a mask.
const ringSize = 2048

// Stats accumulates architectural execution statistics used by the
// instruction-mix and operand-distance experiments (paper Fig 15 and 16).
type Stats struct {
	// Retired counts executed instructions per opcode.
	Retired [straight.NumOps]uint64
	// DistanceHist[d] counts source operands read at distance d
	// (distance 0 — the zero register — is excluded, matching the
	// paper's "distance between producer and consumer" metric).
	DistanceHist [straight.MaxDistance + 1]uint64
	// MaxObservedDistance is the largest non-zero distance read.
	MaxObservedDistance uint16
	// Branches and TakenBranches count conditional branches.
	Branches      uint64
	TakenBranches uint64
	// Loads and Stores count memory operations.
	Loads  uint64
	Stores uint64
}

// Total returns the total retired instruction count in the stats.
func (s *Stats) Total() uint64 {
	var t uint64
	for _, n := range s.Retired {
		t += n
	}
	return t
}

// Machine is a STRAIGHT architectural machine.
type Machine struct {
	image *program.Image
	mem   *program.Memory

	pc    uint32
	sp    uint32
	count uint64 // dynamic instruction count == destination register id
	ring  [ringSize]uint32

	exited   bool
	exitCode int32

	out        io.Writer //lint:resetless output attachment, survives Reset by design
	ioBuf      []byte    // reusable console-output buffer (keeps syscalls allocation-free)
	stats      Stats
	collectHot bool //lint:resetless profiling configuration, survives Reset by design

	// strictBound, when non-zero, makes Step fault on any source read
	// beyond that distance or of a slot no instruction has written yet —
	// the dynamic counterpart of the static checks in internal/sverify.
	strictBound uint16 //lint:resetless checking configuration, survives Reset by design

	// dec/decOK cache the decode of every text word so Step pays the
	// decoder once per static instruction instead of once per dynamic one
	// — the dominant cost of the architectural loop when it serves as the
	// sampled simulator's fast-forward engine (DESIGN.md §16). Slices are
	// replaced wholesale (never mutated in place) so Clone can share them.
	dec   []straight.Inst //lint:resetless predecoded text cache, keyed to the image; Reset rebuilds it on image change
	decOK []bool          //lint:resetless predecoded text validity, rebuilt together with dec

	// TraceFn, when non-nil, receives every retired instruction. The cycle
	// simulator's cross-validation and the examples' tracing hook in here.
	TraceFn func(Retired)
}

// Retired describes one architecturally executed instruction.
type Retired struct {
	Count  uint64 // dynamic instruction number (destination id)
	PC     uint32
	Inst   straight.Inst
	Result uint32
	NextPC uint32
	SP     uint32 // SP after the instruction
	// MemAddr is the effective address of a load or store (else 0).
	MemAddr uint32
}

// New creates a machine for the image with an isolated memory copy.
func New(im *program.Image) *Machine {
	m := &Machine{
		image: im,
		mem:   program.NewMemory(),
		pc:    im.Entry,
		sp:    program.DefaultStackTop,
		out:   io.Discard,
	}
	m.mem.LoadImage(im)
	m.predecode()
	return m
}

// predecode decodes every text word once. Words that fail to decode
// (data or padding placed in text) are marked invalid; Step falls back
// to the real decoder there, reproducing the exact fault. Fresh slices
// are allocated on every rebuild so clones sharing the old cache stay
// consistent.
func (m *Machine) predecode() {
	dec := make([]straight.Inst, len(m.image.Text))
	ok := make([]bool, len(m.image.Text))
	for i, w := range m.image.Text {
		if inst, err := straight.Decode(w); err == nil {
			dec[i], ok[i] = inst, true
		}
	}
	m.dec, m.decOK = dec, ok
}

// Reset returns the machine to power-on state for img (nil = rerun the
// current image), reusing the sparse memory's page frames and the I/O
// buffer. Output, strict mode, and hot-PC collection are configuration
// and survive; TraceFn is cleared (it is re-armed per use).
func (m *Machine) Reset(img *program.Image) {
	if img == nil {
		img = m.image
	}
	rebuild := img != m.image || m.dec == nil
	m.image = img
	if rebuild {
		m.predecode()
	}
	m.mem.Reset()
	m.mem.LoadImage(img)
	m.pc = img.Entry
	m.sp = program.DefaultStackTop
	m.count = 0
	m.ring = [ringSize]uint32{}
	m.exited = false
	m.exitCode = 0
	m.ioBuf = m.ioBuf[:0]
	m.stats = Stats{}
	m.TraceFn = nil
}

// SetOutput directs console syscall output (SysPutc etc.) to w.
func (m *Machine) SetOutput(w io.Writer) { m.out = w }

// SetStrict enables strict mode: any source operand read at a distance
// greater than maxDist, or reaching a slot no instruction has written
// yet (before program start), faults instead of silently reading stale
// or zero ring contents. maxDist 0 selects the ISA maximum. Strict mode
// turns the compiler contract the hardware assumes into a dynamic
// assertion, cross-validating the static verifier.
func (m *Machine) SetStrict(maxDist int) {
	if maxDist <= 0 || maxDist > straight.MaxDistance {
		maxDist = straight.MaxDistance
	}
	m.strictBound = uint16(maxDist)
}

// Mem exposes the machine memory (for test setup and inspection).
func (m *Machine) Mem() *program.Memory { return m.mem }

// PC returns the current program counter.
//
//lint:hotpath
func (m *Machine) PC() uint32 { return m.pc }

// SP returns the current stack pointer.
func (m *Machine) SP() uint32 { return m.sp }

// InstCount returns the dynamic instruction count.
func (m *Machine) InstCount() uint64 { return m.count }

// Exited reports whether the program executed SYS exit, and its code.
//
//lint:hotpath
func (m *Machine) Exited() (bool, int32) { return m.exited, m.exitCode }

// Stats returns the accumulated statistics.
func (m *Machine) Stats() *Stats { return &m.stats }

// Reg reads the value produced by the instruction at the given distance
// from the *next* instruction to execute (distance 1 = most recently
// executed). Distance 0 reads zero.
//
//lint:hotpath
func (m *Machine) Reg(distance uint16) uint32 {
	if distance == 0 {
		return 0
	}
	return m.ring[(m.count-uint64(distance))&(ringSize-1)]
}

//lint:coldpath fault construction; a fault aborts the run
func (m *Machine) fault(kind FaultKind, msg string, args ...any) error {
	return &Fault{Kind: kind, PC: m.pc, Count: m.count, Msg: fmt.Sprintf(msg, args...)}
}

// read returns a source operand at the given distance and accumulates the
// operand-distance statistics. It is a method rather than a per-Step
// closure so the architectural step path stays allocation-free.
func (m *Machine) read(d uint16) uint32 {
	if d != 0 {
		m.stats.DistanceHist[d]++
		if d > m.stats.MaxObservedDistance {
			m.stats.MaxObservedDistance = d
		}
	}
	return m.Reg(d)
}

// strictCheck validates the instruction's source distances before it
// executes (strict mode).
func (m *Machine) strictCheck(inst straight.Inst) error {
	switch inst.Op.Format() {
	case straight.FmtR, straight.FmtS:
		if err := m.checkDistance(inst.Op, inst.Src1); err != nil {
			return err
		}
		return m.checkDistance(inst.Op, inst.Src2)
	case straight.FmtI, straight.FmtJR:
		return m.checkDistance(inst.Op, inst.Src1)
	}
	return nil
}

// checkDistance validates one source distance. A method rather than a
// per-strictCheck closure so the strict oracle loop stays
// allocation-free.
func (m *Machine) checkDistance(op straight.Op, d uint16) error {
	if d == 0 {
		return nil
	}
	if d > m.strictBound {
		return m.fault(FaultStrictBound, "strict: %s reads distance %d beyond bound %d", op, d, m.strictBound)
	}
	if uint64(d) > m.count {
		return m.fault(FaultStrictUninit, "strict: %s reads [%d] but only %d instruction(s) have executed (never-written slot)",
			op, d, m.count)
	}
	return nil
}

// Step executes one instruction. It returns io.EOF after SYS exit.
//
//lint:hotpath
func (m *Machine) Step() error {
	if m.exited {
		return io.EOF
	}
	w, err := m.image.FetchWord(m.pc)
	if err != nil {
		return m.fault(FaultFetch, "%v", err)
	}
	var inst straight.Inst
	if i := (m.pc - m.image.TextBase) / program.InstructionBytes; m.decOK != nil && m.decOK[i] {
		inst = m.dec[i]
	} else if inst, err = straight.Decode(w); err != nil {
		return m.fault(FaultDecode, "%v", err)
	}
	if m.strictBound != 0 {
		if err := m.strictCheck(inst); err != nil {
			return err
		}
	}

	var result uint32
	var memAddr uint32
	nextPC := m.pc + program.InstructionBytes
	op := inst.Op
	switch op.Class() {
	case straight.ClassNop:
		// result 0
	case straight.ClassALU, straight.ClassMul, straight.ClassDiv:
		switch {
		case op == straight.RMOV:
			result = m.read(inst.Src1)
		case op == straight.SPADD:
			m.sp += uint32(inst.Imm)
			result = m.sp
		case op == straight.LUI:
			result = straight.LUIValue(inst.Imm)
		case op.Format() == straight.FmtR:
			result = straight.EvalALU(op, m.read(inst.Src1), m.read(inst.Src2))
		default:
			result = straight.EvalALUImm(op, m.read(inst.Src1), inst.Imm)
		}
	case straight.ClassLoad:
		addr := m.read(inst.Src1) + uint32(inst.Imm)
		memAddr = addr
		width, _ := straight.LoadWidth(op)
		if addr%uint32(width) != 0 {
			return m.fault(FaultMisaligned, "misaligned %s at address %#08x", op, addr)
		}
		result = straight.ExtendLoad(op, m.mem.Load(addr, width))
		m.stats.Loads++
	case straight.ClassStore:
		addr := m.read(inst.Src1) + uint32(inst.Imm)
		memAddr = addr
		val := m.read(inst.Src2)
		width := straight.StoreWidth(op)
		if addr%uint32(width) != 0 {
			return m.fault(FaultMisaligned, "misaligned %s at address %#08x", op, addr)
		}
		m.mem.Store(addr, val, width)
		result = val // stores return the stored value (paper §III-A)
		m.stats.Stores++
	case straight.ClassBranch:
		v := m.read(inst.Src1)
		taken := straight.BranchTaken(op, v)
		m.stats.Branches++
		if taken {
			m.stats.TakenBranches++
			nextPC = m.pc + uint32(inst.Imm)*program.InstructionBytes
			result = 1
		}
	case straight.ClassJump:
		switch op {
		case straight.J:
			nextPC = m.pc + uint32(inst.Imm)*program.InstructionBytes
		case straight.JAL:
			result = m.pc + program.InstructionBytes
			nextPC = m.pc + uint32(inst.Imm)*program.InstructionBytes
		case straight.JR:
			nextPC = m.read(inst.Src1)
		case straight.JALR:
			result = m.pc + program.InstructionBytes
			nextPC = m.read(inst.Src1)
		}
		if nextPC%program.InstructionBytes != 0 {
			return m.fault(FaultMisaligned, "jump to misaligned address %#08x", nextPC)
		}
	case straight.ClassSys:
		var err error
		result, err = m.syscall(inst)
		if err != nil {
			return err
		}
	default:
		return m.fault(FaultDecode, "unimplemented opcode %v", op)
	}

	m.ring[m.count&(ringSize-1)] = result
	m.count++
	prevPC := m.pc
	m.pc = nextPC
	m.stats.Retired[op]++
	if m.TraceFn != nil {
		m.TraceFn(Retired{Count: m.count - 1, PC: prevPC, Inst: inst, Result: result, NextPC: nextPC, SP: m.sp, MemAddr: memAddr})
	}
	if m.exited {
		return io.EOF
	}
	return nil
}

// syscall executes a SYS instruction. Console output is formatted into a
// reusable buffer instead of fmt (whose interface boxing allocates on
// every call — syscalls sit on the cross-validated retire path).
func (m *Machine) syscall(inst straight.Inst) (uint32, error) {
	switch inst.Imm {
	case straight.SysExit:
		m.exitCode = int32(m.read(inst.Src1))
		m.exited = true
		return 0, nil
	case straight.SysPutc:
		m.writeByte(byte(m.read(inst.Src1)))
		return 0, nil
	case straight.SysPuti:
		m.writeNum(int64(int32(m.read(inst.Src1))), 10)
		return 0, nil
	case straight.SysPutu:
		m.writeUnum(uint64(m.read(inst.Src1)), 10)
		return 0, nil
	case straight.SysPutx:
		m.writeUnum(uint64(m.read(inst.Src1)), 16)
		return 0, nil
	case straight.SysCycle:
		return uint32(m.count), nil
	}
	return 0, m.fault(FaultBadSys, "unknown SYS function %d", inst.Imm)
}

func (m *Machine) writeByte(b byte) {
	if m.ioBuf == nil {
		m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
	}
	m.ioBuf = append(m.ioBuf[:0], b)
	m.out.Write(m.ioBuf)
}

func (m *Machine) writeNum(v int64, base int) {
	if m.ioBuf == nil {
		m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
	}
	m.ioBuf = strconv.AppendInt(m.ioBuf[:0], v, base)
	m.out.Write(m.ioBuf)
}

func (m *Machine) writeUnum(v uint64, base int) {
	if m.ioBuf == nil {
		m.ioBuf = make([]byte, 0, 32) //lint:alloc console buffer allocated once on first output syscall
	}
	m.ioBuf = strconv.AppendUint(m.ioBuf[:0], v, base)
	m.out.Write(m.ioBuf)
}

// Clone returns an independent copy of the architectural state (fresh
// statistics, discarded output) for oracle replay.
func (m *Machine) Clone() *Machine {
	n := &Machine{
		image:    m.image,
		mem:      m.mem.Clone(),
		pc:       m.pc,
		sp:       m.sp,
		count:    m.count,
		ring:     m.ring,
		exited:   m.exited,
		exitCode: m.exitCode,
		out:      io.Discard,
		dec:      m.dec,
		decOK:    m.decOK,
	}
	return n
}

// Checkpoint is an opaque snapshot of the architectural state (PC, SP,
// dynamic count, result window, memory, exit status). Statistics and the
// output writer are not part of the snapshot: a restored machine keeps
// accumulating into the same Stats and writing to the same output.
type Checkpoint struct {
	pc, sp   uint32
	count    uint64
	ring     [ringSize]uint32
	mem      *program.Memory
	exited   bool
	exitCode int32
}

// Count returns the dynamic instruction count at which the checkpoint
// was taken.
func (c *Checkpoint) Count() uint64 { return c.count }

// PC returns the checkpointed program counter.
func (c *Checkpoint) PC() uint32 { return c.pc }

// SP returns the checkpointed stack pointer.
func (c *Checkpoint) SP() uint32 { return c.sp }

// Mem exposes the checkpointed memory. Callers must treat it as
// read-only: the checkpoint stays valid for further Restore calls.
func (c *Checkpoint) Mem() *program.Memory { return c.mem }

// Exited reports the checkpointed exit status.
func (c *Checkpoint) Exited() (bool, int32) { return c.exited, c.exitCode }

// Checkpoint captures the architectural state so execution can later be
// rewound with Restore. The snapshot is independent of the machine: it
// stays valid however far execution proceeds, and can be restored any
// number of times (the lockstep checker uses periodic checkpoints to
// replay the window leading up to a divergence).
func (m *Machine) Checkpoint() *Checkpoint {
	return &Checkpoint{
		pc: m.pc, sp: m.sp, count: m.count, ring: m.ring,
		mem: m.mem.Clone(), exited: m.exited, exitCode: m.exitCode,
	}
}

// Restore rewinds the machine to a checkpoint taken earlier on the same
// image, reusing the machine's page frames rather than reallocating.
// The checkpoint remains valid for further Restore calls.
func (m *Machine) Restore(c *Checkpoint) {
	m.pc, m.sp, m.count, m.ring = c.pc, c.sp, c.count, c.ring
	m.mem.CopyFrom(c.mem)
	m.exited, m.exitCode = c.exited, c.exitCode
}

// Run executes until SYS exit, a fault, or maxInsns instructions.
// It returns the number of instructions executed. Reaching the
// instruction limit returns an error: benchmarks must terminate via
// SYS exit so truncated runs are never mistaken for results.
func (m *Machine) Run(maxInsns uint64) (uint64, error) {
	start := m.count
	for m.count-start < maxInsns {
		if err := m.Step(); err != nil {
			if err == io.EOF {
				return m.count - start, nil
			}
			return m.count - start, err
		}
	}
	return m.count - start, m.fault(FaultLimit, "instruction limit %d reached without exit", maxInsns)
}

// RunUntil executes until the dynamic instruction count reaches target,
// the program exits, or a fault occurs. Unlike Run, stopping at the
// target is success, not an error: this is the fast-forward primitive of
// the sampled simulator (internal/sampling), which pauses execution at
// interval boundaries to take checkpoints. Step executes exactly one
// instruction, so the stop lands exactly on target.
//
//lint:hotpath
func (m *Machine) RunUntil(target uint64) error {
	for m.count < target && !m.exited {
		if err := m.Step(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}
