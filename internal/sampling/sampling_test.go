package sampling_test

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"straight/internal/bench"
	"straight/internal/emu/riscvemu"
	"straight/internal/emu/straightemu"
	"straight/internal/perf"
	"straight/internal/resultstore"
	"straight/internal/sampling"
	"straight/internal/workloads"
)

// densePlan is the test plan for the small matrix workloads: short
// intervals with 75% of each interval measured, so the sampled estimate
// is tight enough to compare against the full run within 2%.
func densePlan() sampling.Plan {
	return sampling.Plan{Interval: 1024, Warmup: 256, Window: 1024}
}

// matrixCase is one workload row of the accuracy matrix, crossed with
// every kernel of the PR 9 differential matrix. The workloads run at
// larger iteration counts than the differential tests and each carries
// its own interval plan: the detailed-warmup depth is the knob that
// bounds the restart bias (DESIGN.md §16), and the depth a workload
// needs is an empirical property of how slowly its branch-predictor
// equilibrium re-forms after a restore. The depths below are the
// measured knees — halving any of them pushes at least one 4-wide cell
// past the 2% bound.
type matrixCase struct {
	w     workloads.Workload
	iters int
	plan  sampling.Plan
}

func matrixCases() []matrixCase {
	return []matrixCase{
		{workloads.MicroFib, 8, sampling.Plan{Interval: 4096, Warmup: 32768, Window: 4096}},
		{workloads.MicroBranch, 10, sampling.Plan{Interval: 8192, Warmup: 65536, Window: 8192}},
		{workloads.Dhrystone, 100, sampling.Plan{Interval: 8192, Warmup: 163840, Window: 8192}},
	}
}

func matrixKernels(t *testing.T) []perf.Kernel {
	t.Helper()
	var ks []perf.Kernel
	for _, name := range []string{
		"straight-2way", "straight-4way",
		"ss-2way", "ss-4way",
		"cg-2way", "cg-4way",
	} {
		k, err := perf.KernelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		ks = append(ks, k)
	}
	return ks
}

func buildTarget(t *testing.T, k perf.Kernel, c matrixCase) *sampling.Target {
	t.Helper()
	im, err := perf.BuildImage(k, c.w, c.iters)
	if err != nil {
		t.Fatalf("%s/%s: build: %v", k.Name, c.w, err)
	}
	tgt, err := sampling.NewTarget(string(k.Kind), k.Cfg, im)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestSampledAccuracyMatrix cross-validates the sampled estimator
// against a full detailed run for every workload × policy × width cell
// of the differential matrix: the sampled IPC must land within the
// documented 2% bound of the true IPC, and the sampled instruction
// count must be exact (the fast-forward executes every instruction).
func TestSampledAccuracyMatrix(t *testing.T) {
	const bound = 0.02
	for _, c := range matrixCases() {
		for _, k := range matrixKernels(t) {
			c, k := c, k
			t.Run(string(c.w)+"/"+k.Name, func(t *testing.T) {
				im, err := perf.BuildImage(k, c.w, c.iters)
				if err != nil {
					t.Fatal(err)
				}
				full, err := perf.Run(k, im)
				if err != nil {
					t.Fatal(err)
				}
				fullIPC := float64(full.Stats.Retired) / float64(full.Stats.Cycles)

				tgt, err := sampling.NewTarget(string(k.Kind), k.Cfg, im)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := sampling.Run(tgt, c.plan, sampling.Options{Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if rep.TotalInsts != full.Stats.Retired {
					t.Errorf("sampled TotalInsts = %d, full run retired %d",
						rep.TotalInsts, full.Stats.Retired)
				}
				relErr := math.Abs(rep.IPC-fullIPC) / fullIPC
				t.Logf("full IPC %.4f, sampled IPC %.4f ±%.2f%%, err %.3f%%, %d windows, coverage %.1f%%",
					fullIPC, rep.IPC, 100*rep.CPI.RelCI95, 100*relErr, len(rep.Windows), 100*rep.Coverage)
				if relErr > bound {
					t.Errorf("sampled IPC %.4f vs full %.4f: relative error %.3f%% exceeds %.0f%% bound",
						rep.IPC, fullIPC, 100*relErr, 100*bound)
				}
			})
		}
	}
}

// TestSampledDeterminism: the same target and plan must produce a
// byte-identical report fingerprint at any worker count and whether the
// windows are computed cold or served from the store.
func TestSampledDeterminism(t *testing.T) {
	k, err := perf.KernelByName("straight-2way")
	if err != nil {
		t.Fatal(err)
	}
	tgt := buildTarget(t, k, matrixCase{w: workloads.MicroFib, iters: 1})
	plan := densePlan()

	rep1, err := sampling.Run(tgt, plan, sampling.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := sampling.Run(tgt, plan, sampling.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep1.Fingerprint(), rep4.Fingerprint()) {
		t.Error("fingerprints differ across worker counts")
	}

	store, err := resultstore.Open(filepath.Join(t.TempDir(), "windows.store"), resultstore.Options{Salt: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cold, err := sampling.Run(tgt, plan, sampling.Options{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Timing.StoreHits != 0 {
		t.Errorf("cold run reported %d store hits", cold.Timing.StoreHits)
	}
	warm, err := sampling.Run(tgt, plan, sampling.Options{Workers: 2, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Timing.StoreHits != len(warm.Windows) {
		t.Errorf("warm run hit %d/%d windows", warm.Timing.StoreHits, len(warm.Windows))
	}
	if !bytes.Equal(rep1.Fingerprint(), cold.Fingerprint()) ||
		!bytes.Equal(cold.Fingerprint(), warm.Fingerprint()) {
		t.Error("fingerprints differ between cold, store-cold, and store-warm runs")
	}
	// The cold run also cached the checkpoint sequence, so the warm run
	// must have taken the fully-cached path: no fast-forward at all.
	if warm.Timing.FFSeconds != 0 {
		t.Errorf("store-warm run spent %.3fs fast-forwarding; cached checkpoint sequence should skip it", warm.Timing.FFSeconds)
	}
	// An output sink disables the fully-cached path — console output
	// only exists if the program executes — but the windows still hit.
	var out bytes.Buffer
	warmOut, err := sampling.Run(tgt, plan, sampling.Options{Workers: 2, Store: store, Output: &out})
	if err != nil {
		t.Fatal(err)
	}
	if warmOut.Timing.FFSeconds == 0 {
		t.Error("store-warm run with an output sink skipped the fast-forward")
	}
	if warmOut.Timing.StoreHits != len(warmOut.Windows) {
		t.Errorf("store-warm run with output hit %d/%d windows", warmOut.Timing.StoreHits, len(warmOut.Windows))
	}
	if !bytes.Equal(warm.Fingerprint(), warmOut.Fingerprint()) {
		t.Error("fingerprint differs between fully-cached and output-sink store-warm runs")
	}
}

// TestSampledNoIdleSkipInvariance: idle-skipping is cycle-exact
// (DESIGN.md §12) and deliberately excluded from the window cache key,
// so both stepping modes must produce identical report fingerprints.
func TestSampledNoIdleSkipInvariance(t *testing.T) {
	k, err := perf.KernelByName("ss-2way")
	if err != nil {
		t.Fatal(err)
	}
	tgt := buildTarget(t, k, matrixCase{w: workloads.MicroFib, iters: 1})
	plan := densePlan()
	skip, err := sampling.Run(tgt, plan, sampling.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := sampling.Run(tgt, plan, sampling.Options{Workers: 2, NoIdleSkip: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(skip.Fingerprint(), strict.Fingerprint()) {
		t.Error("idle-skipped and strict-stepped sampled reports differ")
	}
}

// TestSampledOffset: a phase-shifted plan still reconstructs a sane
// estimate (windows start at Offset + k·Interval).
func TestSampledOffset(t *testing.T) {
	k, err := perf.KernelByName("straight-2way")
	if err != nil {
		t.Fatal(err)
	}
	tgt := buildTarget(t, k, matrixCase{w: workloads.MicroFib, iters: 1})
	plan := densePlan()
	plan.Offset = 512
	rep, err := sampling.Run(tgt, plan, sampling.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Windows) == 0 {
		t.Fatal("offset plan produced no windows")
	}
	for _, w := range rep.Windows {
		if (w.Start-plan.Offset)%plan.Interval != 0 {
			t.Errorf("window starts at %d, not on the offset grid", w.Start)
		}
	}
	if rep.IPC <= 0 {
		t.Errorf("offset plan IPC = %v", rep.IPC)
	}
}

// TestPlanValidate pins the degenerate-plan rejections.
func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    sampling.Plan
		ok   bool
	}{
		{"default", sampling.DefaultPlan(), true},
		{"zero-window", sampling.Plan{Interval: 100, Warmup: 10}, false},
		{"zero-interval", sampling.Plan{Window: 10}, false},
		{"warmup-overlap", sampling.Plan{Interval: 100, Warmup: 60, Window: 60}, true},
		{"full-tile", sampling.Plan{Interval: 100, Warmup: 40, Window: 100}, true},
		{"double-count", sampling.Plan{Interval: 100, Warmup: 0, Window: 101}, false},
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

// TestSampledUnknownPolicy pins the NewTarget error path.
func TestSampledUnknownPolicy(t *testing.T) {
	if _, err := sampling.NewTarget("vliw", perf.Kernels()[0].Cfg, nil); err == nil {
		t.Fatal("NewTarget accepted an unknown policy")
	}
}

// TestLongWorkloadFullRun pins the long-running workload tier: the
// DhrystoneLong kernel must retire 10–50M instructions at the
// bench-standard iteration count and exit cleanly on both ISAs. Gated
// behind -short only for the slower RISC-V build.
func TestLongWorkloadFullRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long workload full run skipped in -short mode")
	}
	const iters = 300
	check := func(name string, count uint64, exited bool, code int32) {
		if !exited || code != 0 {
			t.Fatalf("%s: exited=%v code=%d, want clean exit", name, exited, code)
		}
		if count < 10_000_000 || count > 50_000_000 {
			t.Errorf("%s: retired %d instructions, want 10M–50M", name, count)
		}
		t.Logf("%s: retired %d instructions", name, count)
	}

	sim, err := bench.BuildSTRAIGHT(workloads.DhrystoneLong, iters, 127, bench.ModeREP)
	if err != nil {
		t.Fatal(err)
	}
	sm := straightemu.New(sim)
	if err := sm.RunUntil(100_000_000); err != nil {
		t.Fatal(err)
	}
	sx, scode := sm.Exited()
	check("straight", sm.InstCount(), sx, scode)

	rim, err := bench.BuildRISCV(workloads.DhrystoneLong, iters)
	if err != nil {
		t.Fatal(err)
	}
	rm := riscvemu.New(rim)
	if err := rm.RunUntil(100_000_000); err != nil {
		t.Fatal(err)
	}
	rx, rcode := rm.Exited()
	check("riscv", rm.InstCount(), rx, rcode)
}
