package sampling

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"straight/internal/uarch"
)

// Metric is a ratio estimate over sample windows with its sampling
// error: StdErr is the standard error of the ratio (Taylor-linearized
// ratio-estimator variance), CI95 the half-width of the 95% confidence
// interval (1.96·StdErr, normal approximation), RelCI95 that half-width
// relative to the mean — the "documented error bound" the accuracy
// tests assert against.
type Metric struct {
	Mean    float64 `json:"mean"`
	StdErr  float64 `json:"stderr"`
	CI95    float64 `json:"ci95"`
	RelCI95 float64 `json:"rel_ci95"`
}

// metricRatio estimates R = Σnum / Σden with the classical ratio
// estimator. Each window contributes (num_i, den_i) — cycles over
// retired instructions for CPI, stall cycles over cycles for stall
// shares — so windows are weighted by how much they measured: a
// truncated tail window that retired 30 instructions moves the estimate
// 30 instructions' worth, where an equal-weighted mean of per-window
// ratios would let it swamp the estimate (CPI in a short slow tail can
// be 10× the body's). The error term uses the linearized residuals
// e_i = num_i − R·den_i: Var(R) ≈ n/(n−1) · Σe_i² / (Σden)².
func metricRatio(nums, dens []float64) Metric {
	var sn, sd float64
	for i := range nums {
		sn += nums[i]
		sd += dens[i]
	}
	if sd == 0 {
		return Metric{}
	}
	r := sn / sd
	m := Metric{Mean: r}
	n := float64(len(nums))
	if len(nums) > 1 {
		var ss float64
		for i := range nums {
			e := nums[i] - r*dens[i]
			ss += e * e
		}
		m.StdErr = math.Sqrt(n/(n-1)*ss) / sd
		m.CI95 = 1.96 * m.StdErr
		if r != 0 {
			m.RelCI95 = m.CI95 / math.Abs(r)
		}
	}
	return m
}

// WindowResult is one measured sample window.
type WindowResult struct {
	// Index is the window's position in the interval plan.
	Index int `json:"index"`
	// Start is the retired-instruction count at the window's checkpoint.
	Start uint64 `json:"start"`
	// Key is the window's content address (checkpoint hash + config +
	// plan) in the result store.
	Key string `json:"key"`
	// WarmupRetired is how many instructions the discarded warmup
	// actually retired (usually Plan.Warmup, less near program exit).
	WarmupRetired uint64 `json:"warmup_retired"`
	// Retired/Cycles/CPI are the measured window's contribution. A
	// window the program exited during warmup has Retired 0 and is
	// excluded from reconstruction.
	Retired uint64  `json:"retired"`
	Cycles  int64   `json:"cycles"`
	CPI     float64 `json:"cpi"`
	// Stats is the full counter delta for the measured span. It is a
	// window delta, not a finished run: uarch.Stats.Check invariants
	// like retired ≤ fetched need not hold (see uarch.Stats.Sub).
	Stats uarch.Stats `json:"stats"`
	// Cached reports that this window was served from the result store.
	// Excluded from the JSON encoding (and hence the fingerprint): a
	// warm re-run must produce byte-identical reports.
	Cached bool `json:"-"`
}

// StallShare is one stall cause's share of measured cycles.
type StallShare struct {
	Name string `json:"name"`
	// Share is the cause's share of all measured cycles (sum of stall
	// cycles / sum of window cycles — the ratio estimate's mean).
	Share float64 `json:"share"`
	// PerWindow is the full ratio estimate with its confidence interval,
	// symmetric with the CPI estimate.
	PerWindow Metric `json:"per_window"`
}

// Timing is the wall-clock accounting of a sampled run. It is excluded
// from Report.Fingerprint: timings differ run to run by nature.
type Timing struct {
	FFSeconds     float64 `json:"ff_seconds"`
	WindowSeconds float64 `json:"window_seconds"`
	WallSeconds   float64 `json:"wall_seconds"`
	// EffectiveKIPS is total program instructions divided by total wall
	// time — the headline "effective simulation speed".
	EffectiveKIPS float64 `json:"effective_kips"`
	// StoreHits counts windows served from the result store.
	StoreHits int `json:"store_hits"`
}

// Report is the outcome of one sampled run.
type Report struct {
	Policy string `json:"policy"`
	Config string `json:"config"`
	Plan   Plan   `json:"plan"`

	// TotalInsts is the program's true retired-instruction count (known
	// exactly: the fast-forward executes every instruction). ExitCode is
	// the program's architectural exit code.
	TotalInsts uint64 `json:"total_insts"`
	ExitCode   int32  `json:"exit_code"`

	Windows []WindowResult `json:"windows"`
	// MeasuredInsts/MeasuredCycles sum the sample windows; Coverage is
	// the measured fraction of the program.
	MeasuredInsts  uint64  `json:"measured_insts"`
	MeasuredCycles int64   `json:"measured_cycles"`
	Coverage       float64 `json:"coverage"`

	// CPI is the equal-weighted mean of window CPIs with its confidence
	// interval; IPC its reciprocal. To first order the relative CI of
	// IPC equals CPI.RelCI95 (delta method), which is the error bound
	// quoted for both.
	CPI Metric  `json:"cpi"`
	IPC float64 `json:"ipc"`
	// EstimatedCycles extrapolates whole-program cycles: TotalInsts ×
	// mean CPI, rounded.
	EstimatedCycles int64 `json:"estimated_cycles"`

	// StallShares breaks measured cycles down by dispatch-stall cause,
	// in a fixed order (deterministic reports).
	StallShares []StallShare `json:"stall_shares"`

	Timing Timing `json:"timing"`
}

// reconstruct builds the whole-program estimate from the measured
// windows (phase 3 of Run).
func reconstruct(t *Target, plan Plan, total uint64, exitCode int32, windows []WindowResult) *Report {
	rep := &Report{
		Policy:     t.Policy,
		Config:     t.Cfg.Name,
		Plan:       plan,
		TotalInsts: total,
		ExitCode:   exitCode,
		Windows:    windows,
	}
	var cycles, retired []float64
	for _, w := range windows {
		rep.MeasuredInsts += w.Retired
		rep.MeasuredCycles += w.Cycles
		if w.Retired > 0 {
			cycles = append(cycles, float64(w.Cycles))
			retired = append(retired, float64(w.Retired))
		}
	}
	if total > 0 {
		rep.Coverage = float64(rep.MeasuredInsts) / float64(total)
	}
	rep.CPI = metricRatio(cycles, retired)
	if rep.CPI.Mean > 0 {
		rep.IPC = 1 / rep.CPI.Mean
		rep.EstimatedCycles = int64(math.Round(float64(total) * rep.CPI.Mean))
	}

	// Stall shares, in the fixed order of uarch.Stats.String.
	causes := []struct {
		name string
		get  func(*uarch.Stats) int64
	}{
		{"rob", func(s *uarch.Stats) int64 { return s.StallROBFull }},
		{"iq", func(s *uarch.Stats) int64 { return s.StallIQFull }},
		{"lsq", func(s *uarch.Stats) int64 { return s.StallLSQFull }},
		{"freelist", func(s *uarch.Stats) int64 { return s.StallFreeList }},
		{"frontend", func(s *uarch.Stats) int64 { return s.StallFrontEnd }},
		{"spadd", func(s *uarch.Stats) int64 { return s.StallSPAddLimit }},
		{"recovery", func(s *uarch.Stats) int64 { return s.RecoveryStall }},
	}
	for _, c := range causes {
		sh := StallShare{Name: c.name}
		var stall, cyc []float64
		for i := range windows {
			w := &windows[i]
			if w.Retired == 0 || w.Cycles <= 0 {
				continue
			}
			stall = append(stall, float64(c.get(&w.Stats)))
			cyc = append(cyc, float64(w.Cycles))
		}
		sh.PerWindow = metricRatio(stall, cyc)
		sh.Share = sh.PerWindow.Mean
		rep.StallShares = append(rep.StallShares, sh)
	}
	return rep
}

// Fingerprint returns the deterministic byte encoding of the report:
// the full JSON with the timing section zeroed. Two runs with the same
// target and plan — at any worker count, cold or store-warm — produce
// identical fingerprints (asserted by TestSampledDeterminism).
func (r *Report) Fingerprint() []byte {
	cp := *r
	cp.Timing = Timing{}
	b, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		// Report marshaling cannot fail: all fields are plain data.
		panic(fmt.Sprintf("sampling: fingerprint: %v", err))
	}
	return b
}

// String renders a compact human-readable summary (the CLIs' -sample
// output).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sampled %s/%s: %d insts, %d windows (interval=%d warmup=%d window=%d, coverage %.2f%%)\n",
		r.Policy, r.Config, r.TotalInsts, len(r.Windows), r.Plan.Interval, r.Plan.Warmup, r.Plan.Window, 100*r.Coverage)
	fmt.Fprintf(&b, "IPC=%.4f ±%.2f%% (95%% CI)  CPI=%.4f±%.4f  est cycles=%d  exit=%d\n",
		r.IPC, 100*r.CPI.RelCI95, r.CPI.Mean, r.CPI.CI95, r.EstimatedCycles, r.ExitCode)
	b.WriteString("stall shares:")
	for _, s := range r.StallShares {
		if s.Share != 0 {
			fmt.Fprintf(&b, " %s=%.1f%%", s.Name, 100*s.Share)
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "wall %.3fs (ff %.3fs + windows %.3fs), effective %.0f KIPS, store hits %d/%d\n",
		r.Timing.WallSeconds, r.Timing.FFSeconds, r.Timing.WindowSeconds, r.Timing.EffectiveKIPS,
		r.Timing.StoreHits, len(r.Windows))
	return b.String()
}
