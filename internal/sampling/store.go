package sampling

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"straight/internal/resultstore"
	"straight/internal/uarch"
)

// Window results are content-addressed: the key folds in the serialized
// checkpoint (which canonically encodes the entire architectural state
// the window starts from), the policy and full core configuration, and
// the whole interval plan. The plan is included in full because the
// functionally-warmed microarchitectural state a window adopts is a
// deterministic function of the architectural position *and* the
// warming schedule (Interval/Offset/WarmMem place the warming bursts).
// Anything that leaves all of those unchanged — re-running a sweep,
// growing the workload's tail after this window — hits the cache.
//
// Deliberately excluded from the key:
//   - NoIdleSkip: idle-skipping is proven cycle-exact (DESIGN.md §12),
//     so both stepping modes produce the same counters.
//   - Worker count: results are computed per window, independent of
//     scheduling.

// windowSchema versions both the key derivation and the stored payload;
// bump it whenever either changes shape so stale entries miss instead of
// decoding wrongly.
const windowSchema = "straight-sample-window-v3"

// ffSchema versions the cached fast-forward outcome: the checkpoint
// sequence plus the program's true instruction count and exit code.
// Keyed purely architecturally (ISA + image + checkpoint geometry), so
// every core policy and configuration on the same ISA shares one entry.
const ffSchema = "straight-sample-ffwd-v1"

// windowKey derives the content address of one sample window from the
// checkpoint's canonical serialization.
func windowKey(t *Target, plan Plan, enc []byte) (resultstore.Key, error) {
	cfg, err := json.Marshal(t.Cfg)
	if err != nil {
		return resultstore.Key{}, fmt.Errorf("marshal config: %w", err)
	}
	kh := resultstore.NewKeyHasher(windowSchema)
	kh.String("policy", t.Policy)
	kh.Bytes("config", cfg)
	kh.Bytes("checkpoint", enc)
	kh.Int("interval", int64(plan.Interval))
	kh.Int("warmup", int64(plan.Warmup))
	kh.Int("window", int64(plan.Window))
	kh.Int("offset", int64(plan.Offset))
	kh.Int("warm_mem", int64(plan.WarmMem))
	return kh.Sum(), nil
}

// isaName maps a core policy to the ISA its fast-forward runs on: the
// checkpoint sequence is architectural state only, so ss and cg (both
// RV32IM) share cached fast-forwards.
func isaName(policy string) string {
	if policy == "straight" {
		return "straight"
	}
	return "riscv"
}

// ffKey derives the content address of a fast-forward outcome. Only the
// fields that shape the checkpoint sequence participate: the ISA, the
// semantic image content, where checkpoints are taken (Interval/Offset)
// and the instruction cap. Warmup/Window/WarmMem are window-time
// concerns and deliberately excluded, so plans that differ only in how
// they warm or measure share one cached fast-forward.
func ffKey(t *Target, plan Plan, limit uint64) resultstore.Key {
	kh := resultstore.NewKeyHasher(ffSchema)
	kh.String("isa", isaName(t.Policy))
	kh.Int("entry", int64(t.Img.Entry))
	kh.Int("text_base", int64(t.Img.TextBase))
	text := make([]byte, 0, 4*len(t.Img.Text))
	for _, w := range t.Img.Text {
		text = binary.LittleEndian.AppendUint32(text, w)
	}
	kh.Bytes("text", text)
	kh.Int("data_base", int64(t.Img.DataBase))
	kh.Bytes("data", t.Img.Data)
	kh.Int("interval", int64(plan.Interval))
	kh.Int("offset", int64(plan.Offset))
	kh.Int("limit", int64(limit))
	return kh.Sum()
}

// ffSeq is the cached fast-forward outcome: each checkpoint's position
// and canonical serialization, plus the whole program's retired count
// and exit code.
type ffSeq struct {
	points []uint64 // checkpoint positions, strictly increasing
	encs   [][]byte // canonical checkpoint serializations, same order
	total  uint64
	exit   int32
}

// encodeFFSeq packs a fast-forward outcome:
//
//	u64 total, u32 exit-code (two's complement), u32 count,
//	count × (u64 start, u32 len, len bytes)
func encodeFFSeq(points []point, total uint64, exit int32) []byte {
	b := binary.LittleEndian.AppendUint64(nil, total)
	b = binary.LittleEndian.AppendUint32(b, uint32(exit))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(points)))
	for _, p := range points {
		b = binary.LittleEndian.AppendUint64(b, p.start)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(p.enc)))
		b = append(b, p.enc...)
	}
	return b
}

// decodeFFSeq rebuilds a cached fast-forward outcome, validating the
// framing and that checkpoint positions are strictly increasing and
// inside the program.
func decodeFFSeq(raw []byte) (*ffSeq, error) {
	if len(raw) < 16 {
		return nil, fmt.Errorf("sampling: fast-forward cache entry truncated (%d bytes)", len(raw))
	}
	s := &ffSeq{
		total: binary.LittleEndian.Uint64(raw),
		exit:  int32(binary.LittleEndian.Uint32(raw[8:])),
	}
	count := binary.LittleEndian.Uint32(raw[12:])
	raw = raw[16:]
	prev := int64(-1)
	for i := uint32(0); i < count; i++ {
		if len(raw) < 12 {
			return nil, fmt.Errorf("sampling: fast-forward cache entry truncated at checkpoint %d", i)
		}
		start := binary.LittleEndian.Uint64(raw)
		n := binary.LittleEndian.Uint32(raw[8:])
		raw = raw[12:]
		if uint64(len(raw)) < uint64(n) {
			return nil, fmt.Errorf("sampling: fast-forward cache checkpoint %d truncated", i)
		}
		if int64(start) <= prev || start >= s.total {
			return nil, fmt.Errorf("sampling: fast-forward cache checkpoint %d at %d out of order (total %d)", i, start, s.total)
		}
		prev = int64(start)
		s.points = append(s.points, start)
		s.encs = append(s.encs, raw[:n:n])
		raw = raw[n:]
	}
	if len(raw) != 0 {
		return nil, fmt.Errorf("sampling: fast-forward cache entry has %d trailing bytes", len(raw))
	}
	return s, nil
}

// windowData is the stored payload: the window's measurement, minus the
// identity fields (Index/Start/Key) that the plan re-derives on lookup.
type windowData struct {
	WarmupRetired uint64      `json:"warmup_retired"`
	Retired       uint64      `json:"retired"`
	Cycles        int64       `json:"cycles"`
	CPI           float64     `json:"cpi"`
	Stats         uarch.Stats `json:"stats"`
}

func encodeWindow(w WindowResult) []byte {
	b, err := json.Marshal(windowData{
		WarmupRetired: w.WarmupRetired,
		Retired:       w.Retired,
		Cycles:        w.Cycles,
		CPI:           w.CPI,
		Stats:         w.Stats,
	})
	if err != nil {
		// windowData is plain counters; marshaling cannot fail.
		panic(fmt.Sprintf("sampling: encode window: %v", err))
	}
	return b
}

// decodeWindow rebuilds a cached window and re-checks its internal
// consistency, so a store entry that decodes but carries damaged
// numbers is recomputed instead of trusted.
func decodeWindow(raw []byte) (WindowResult, error) {
	var d windowData
	if err := json.Unmarshal(raw, &d); err != nil {
		return WindowResult{}, err
	}
	w := WindowResult{
		WarmupRetired: d.WarmupRetired,
		Retired:       d.Retired,
		Cycles:        d.Cycles,
		CPI:           d.CPI,
		Stats:         d.Stats,
	}
	if err := validateWindow(w); err != nil {
		return WindowResult{}, err
	}
	return w, nil
}

// validateWindow asserts the light invariants a window delta does
// satisfy (the full uarch.Stats.Check applies only to whole runs: a
// window can legally retire instructions fetched before it started).
func validateWindow(w WindowResult) error {
	if w.Cycles < 0 {
		return fmt.Errorf("sampling: window has negative cycles %d", w.Cycles)
	}
	if w.Retired > 0 && w.Cycles == 0 {
		return fmt.Errorf("sampling: window retired %d instructions in zero cycles", w.Retired)
	}
	if w.Retired != w.Stats.Retired || w.Cycles != w.Stats.Cycles {
		return fmt.Errorf("sampling: window summary (retired=%d cycles=%d) disagrees with stats delta (retired=%d cycles=%d)",
			w.Retired, w.Cycles, w.Stats.Retired, w.Stats.Cycles)
	}
	if w.Retired > 0 {
		want := float64(w.Cycles) / float64(w.Retired)
		if w.CPI != want {
			return fmt.Errorf("sampling: window CPI %g disagrees with cycles/retired %g", w.CPI, want)
		}
	}
	return nil
}
