// Package sampling implements SimPoint/SMARTS-style sampled simulation
// (DESIGN.md §16): a functional emulator fast-forwards the workload,
// taking a serializable architectural checkpoint at every interval
// boundary; a detailed cycle core is seeded from each checkpoint via the
// engine's restore-into-core path (engine.Core.Restart), warmed up for W
// instructions with statistics discarded, and then measured for an
// S-instruction sample window. Whole-program IPC/CPI and stall shares
// are reconstructed from the equal-weighted window measurements with
// per-metric confidence intervals. Windows fan out across a bounded
// worker pool with one reusable core per worker, and each window result
// is content-addressed in the result store by checkpoint hash + core
// configuration + plan, so re-sweeps only re-simulate dirty windows.
package sampling

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"straight/internal/cores/cgcore"
	"straight/internal/cores/engine"
	"straight/internal/cores/sscore"
	"straight/internal/cores/straightcore"
	"straight/internal/emu/riscvemu"
	"straight/internal/emu/straightemu"
	"straight/internal/isa/riscv"
	"straight/internal/isa/straight"
	"straight/internal/program"
	"straight/internal/resultstore"
	"straight/internal/uarch"
)

// Plan is the interval plan: where checkpoints are taken and how much of
// each interval is warmed and measured. The plan is part of the window
// cache key, and together with the target it fully determines the
// report — sampling has no other randomness, so equal plans produce
// byte-identical report fingerprints (Report.Fingerprint).
type Plan struct {
	// Interval is the distance in retired instructions between
	// checkpoints (and hence between window starts).
	Interval uint64 `json:"interval"`
	// Warmup is the number of instructions simulated in detail before
	// each measurement to charge cold caches, predictors, and the
	// pipeline fill; its statistics are discarded (SMARTS warming).
	Warmup uint64 `json:"warmup"`
	// Window is the number of instructions measured per sample.
	Window uint64 `json:"window"`
	// Offset shifts the first checkpoint away from instruction 0 — the
	// SMARTS phase-offset "seed". Windows then start at Offset + k*Interval.
	Offset uint64 `json:"offset,omitempty"`
	// WarmMem bounds functional warming (uarch.WarmState): only the last
	// WarmMem retired instructions before each checkpoint train the
	// replica cache/predictor state at fast-forward time. 0 (or any value
	// ≥ Interval) warms continuously — most accurate, but the tracer tax
	// is paid on every fast-forwarded instruction. Warm state accumulates
	// across bursts (it is never reset), so bounded warming only ages
	// lines between bursts rather than dropping them.
	WarmMem uint64 `json:"warm_mem,omitempty"`
}

// DefaultPlan measures ~1.6% of the program: a 128k detailed warmup and
// a 16k measured window every 1M instructions, with functional warming
// over the last quarter of each interval. The warmup is deep because
// detailed warmup depth — not functional warming — is what decays the
// restart bias on the 4-wide configs (DESIGN.md §16.4); 128k holds the
// sampled-vs-full IPC gap to a few percent on every kernel, at a cold
// speedup of ~4-6× over full detailed simulation. Repeat runs against a
// result store skip the fast-forward entirely (the checkpoint sequence
// is content-addressed too) and reduce to hashing — the ~100× regime.
// Dial Warmup down (e.g. 32768) to trade accuracy for cold speed.
func DefaultPlan() Plan {
	return Plan{Interval: 1_000_000, Warmup: 131_072, Window: 16_384, WarmMem: 250_000}
}

// Validate rejects degenerate plans. Window must fit inside the
// interval so no instruction is measured twice (measured spans start
// Interval apart). Warmup is free to overlap the previous window's
// measured span: with Window == Interval the measured spans tile the
// program gaplessly and each warmup replays the tail of the span before
// it — the dense-plan shape the accuracy tests use on small workloads.
func (p Plan) Validate() error {
	if p.Window == 0 {
		return fmt.Errorf("sampling: plan window is zero")
	}
	if p.Interval == 0 {
		return fmt.Errorf("sampling: plan interval is zero")
	}
	if p.Window > p.Interval {
		return fmt.Errorf("sampling: window %d exceeds interval %d (instructions would be measured twice)",
			p.Window, p.Interval)
	}
	return nil
}

// Core is the detailed-simulation surface sampling needs; the three
// policy wrappers (straightcore, sscore, cgcore) all satisfy it.
type Core interface {
	Restart(img *program.Image, ck engine.ArchState) error
	AdoptWarm(w *uarch.WarmState)
	Run(opts engine.Options) (*engine.Result, error)
	Stats() uarch.Stats
	Exited() bool
}

// checkpoint is what the fast-forward machine hands the window runner:
// a restartable architectural snapshot that also serializes canonically
// (the serialization is the content-address of the window).
type checkpoint interface {
	engine.ArchState
	MarshalBinary() ([]byte, error)
}

// ffMachine is the fast-forward surface of the two functional emulators.
type ffMachine interface {
	RunUntil(target uint64) error
	InstCount() uint64
	Exited() (bool, int32)
	SetOutput(w io.Writer)
	TakeCheckpoint() checkpoint
	// SetWarm arms (or, with nil, disarms) functional warming: every
	// retired instruction trains w's replica caches, direction predictor
	// and BTB via the emulator's retire trace hook.
	SetWarm(w *uarch.WarmState)
}

type straightFF struct{ *straightemu.Machine }

func (f straightFF) TakeCheckpoint() checkpoint { return f.Checkpoint() }

func (f straightFF) SetWarm(w *uarch.WarmState) {
	if w == nil {
		f.Machine.TraceFn = nil
		return
	}
	f.Machine.TraceFn = func(r straightemu.Retired) {
		w.Inst(r.PC)
		if r.MemAddr != 0 {
			w.Data(r.MemAddr)
		}
		switch r.Inst.Op.Class() {
		case straight.ClassBranch:
			w.Branch(r.PC, r.NextPC != r.PC+program.InstructionBytes)
		case straight.ClassJump:
			// RAS and BTB training mirror straightcore's policy exactly:
			// JAL/JALR push pc+4 and JR pops (RASRecover), while only the
			// indirect JALR/JR enter the BTB (UpdatesBTB).
			switch r.Inst.Op {
			case straight.JAL:
				w.Call(r.PC + program.InstructionBytes)
			case straight.JALR:
				w.Call(r.PC + program.InstructionBytes)
				w.Indirect(r.PC, r.NextPC)
			case straight.JR:
				w.Return()
				w.Indirect(r.PC, r.NextPC)
			}
		}
	}
}

type riscvFF struct{ *riscvemu.Machine }

func (f riscvFF) TakeCheckpoint() checkpoint { return f.Checkpoint() }

func (f riscvFF) SetWarm(w *uarch.WarmState) {
	if w == nil {
		f.Machine.TraceFn = nil
		return
	}
	f.Machine.TraceFn = func(r riscvemu.Retired) {
		w.Inst(r.PC)
		if r.MemAddr != 0 {
			w.Data(r.MemAddr)
		}
		switch r.Inst.Op.Class() {
		case riscv.ClassBranch:
			w.Branch(r.PC, r.NextPC != r.PC+program.InstructionBytes)
		case riscv.ClassJump:
			// RAS and BTB training mirror sscore's policy (cgcore embeds
			// it): JAL/JALR with rd=ra push pc+4, JALR with rd=x0/rs1=ra
			// pops (RASRecover); only the indirect JALR enters the BTB
			// (UpdatesBTB).
			if r.Inst.Op == riscv.JAL || r.Inst.Op == riscv.JALR {
				if r.Inst.Rd == riscv.RegRA {
					w.Call(r.PC + program.InstructionBytes)
				}
				if r.Inst.Rd == 0 && r.Inst.Rs1 == riscv.RegRA {
					w.Return()
				}
			}
			if r.Inst.Op == riscv.JALR {
				w.Indirect(r.PC, r.NextPC)
			}
		}
	}
}

// Target binds a workload image to a core policy and configuration.
type Target struct {
	// Policy is "straight", "ss" or "cg" (perf.CoreKind values).
	Policy string
	Cfg    uarch.Config
	Img    *program.Image

	newFF   func() ffMachine
	newCore func() Core
}

// NewTarget builds a sampling target for a policy name ("straight",
// "ss", "cg"), core configuration, and image. STRAIGHT policies
// fast-forward on straightemu; the RISC-V policies (ss, cg) on riscvemu.
func NewTarget(policy string, cfg uarch.Config, img *program.Image) (*Target, error) {
	t := &Target{Policy: policy, Cfg: cfg, Img: img}
	switch policy {
	case "straight":
		t.newFF = func() ffMachine { return straightFF{straightemu.New(img)} }
		t.newCore = func() Core { return straightcore.New(cfg, img, engine.Options{}) }
	case "ss":
		t.newFF = func() ffMachine { return riscvFF{riscvemu.New(img)} }
		t.newCore = func() Core { return sscore.New(cfg, img, engine.Options{}) }
	case "cg":
		t.newFF = func() ffMachine { return riscvFF{riscvemu.New(img)} }
		t.newCore = func() Core { return cgcore.New(cfg, img, engine.Options{}) }
	default:
		return nil, fmt.Errorf("sampling: unknown policy %q (want straight, ss or cg)", policy)
	}
	return t, nil
}

// Options control one sampled run.
type Options struct {
	// Workers bounds concurrent sample windows; <= 0 means GOMAXPROCS.
	// The worker count never affects the report contents, only wall time.
	Workers int
	// Store, when non-nil, caches window results content-addressed by
	// checkpoint hash + config + plan (schema windowSchema).
	Store *resultstore.Store
	// NoIdleSkip forces strict cycle-by-cycle stepping in the windows.
	NoIdleSkip bool
	// Output receives the program's console output (written once, by the
	// fast-forward pass, which executes every instruction). nil discards.
	Output io.Writer
	// MaxInsns caps the fast-forward pass; 0 means the default cap. A
	// program that does not exit within the cap is an error, mirroring
	// the emulators' Run contract.
	MaxInsns uint64
	// Interrupt, when non-nil, cancels the run (uarch.ErrInterrupted):
	// polled between fast-forward intervals and inside window simulation.
	Interrupt *atomic.Bool
}

// defaultMaxInsns caps runaway fast-forwards (~22s at measured
// emulator throughput) far above the long-workload tier.
const defaultMaxInsns = 2_000_000_000

// point is one selected interval: its start (= checkpoint position),
// the checkpoint to restart from, and the functionally-warmed
// microarchitectural snapshot to adopt.
type point struct {
	start uint64
	ck    checkpoint
	enc   []byte // ck.MarshalBinary(): the window's content address
	warm  *uarch.WarmState
}

// Run fast-forwards the target's workload, measures the plan's sample
// windows on the detailed core, and reconstructs whole-program metrics.
func Run(t *Target, plan Plan, opts Options) (*Report, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	wallStart := time.Now()
	limit := opts.MaxInsns
	if limit == 0 {
		limit = defaultMaxInsns
	}

	// Phase 0: fully-cached fast path. When the store already holds this
	// image's checkpoint sequence AND every window derived from it, the
	// whole run — fast-forward included — reduces to hashing. Only
	// legal with no output sink: a cached run executes nothing, and the
	// program's console output is produced by execution.
	if opts.Store != nil && opts.Output == nil {
		if rep, ok := runFromStore(t, plan, opts, limit, wallStart); ok {
			return rep, nil
		}
	}

	// Phase 1: functional fast-forward, checkpointing every interval.
	ff := t.newFF()
	if opts.Output != nil {
		ff.SetOutput(opts.Output)
	}
	// Functional warming: continuous when WarmMem is 0 or covers the
	// whole interval, else a warming burst over the last WarmMem
	// instructions before each checkpoint (the tracer is the dominant
	// fast-forward cost, so bounding it preserves the speedup).
	warm := uarch.NewWarmState(t.Cfg)
	warmAll := plan.WarmMem == 0 || plan.WarmMem >= plan.Interval
	if warmAll {
		ff.SetWarm(warm)
	}
	var pts []point
	for k := uint64(0); ; k++ {
		target := plan.Offset + k*plan.Interval
		if target > limit {
			break
		}
		if opts.Interrupt != nil && opts.Interrupt.Load() {
			return nil, uarch.ErrInterrupted
		}
		if !warmAll && target > 0 {
			burst := target - min(plan.WarmMem, target)
			ff.SetWarm(nil)
			if err := ff.RunUntil(burst); err != nil {
				return nil, fmt.Errorf("sampling: fast-forward: %w", err)
			}
			ff.SetWarm(warm)
		}
		if err := ff.RunUntil(target); err != nil {
			return nil, fmt.Errorf("sampling: fast-forward: %w", err)
		}
		if done, _ := ff.Exited(); done {
			break
		}
		ck := ff.TakeCheckpoint()
		enc, err := ck.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("sampling: marshal checkpoint @%d: %w", target, err)
		}
		pts = append(pts, point{start: target, ck: ck, enc: enc, warm: warm.Clone()})
	}
	ff.SetWarm(nil)
	done, exitCode := ff.Exited()
	if !done {
		return nil, fmt.Errorf("sampling: %s/%s did not exit within %d instructions", t.Policy, t.Cfg.Name, limit)
	}
	total := ff.InstCount()
	if opts.Store != nil {
		// Persist the checkpoint sequence so the next run with this image
		// and checkpoint geometry (any policy/config on the same ISA) can
		// skip the fast-forward when its windows are all cached too.
		if err := opts.Store.Put(ffKey(t, plan, limit), encodeFFSeq(pts, total, exitCode)); err != nil {
			return nil, fmt.Errorf("sampling: store fast-forward: %w", err)
		}
	}
	ffWall := time.Since(wallStart)

	// Phase 2: fan the windows across the worker pool, one reusable core
	// per worker (Restart per window, construction once).
	windows, err := runWindows(t, plan, opts, pts)
	if err != nil {
		return nil, err
	}

	// Phase 3: reconstruct whole-program metrics.
	rep := reconstruct(t, plan, total, exitCode, windows)
	rep.Timing.FFSeconds = ffWall.Seconds()
	rep.Timing.WallSeconds = time.Since(wallStart).Seconds()
	rep.Timing.WindowSeconds = rep.Timing.WallSeconds - rep.Timing.FFSeconds
	if rep.Timing.WallSeconds > 0 {
		rep.Timing.EffectiveKIPS = float64(total) / rep.Timing.WallSeconds / 1000
	}
	for _, w := range windows {
		if w.Cached {
			rep.Timing.StoreHits++
		}
	}
	return rep, nil
}

// runFromStore attempts the fully-cached run: load the checkpoint
// sequence for this image and checkpoint geometry, derive every window's
// content address from the serialized checkpoints, and reconstruct the
// report purely from stored window results. Any miss — no cached
// fast-forward, a missing or corrupt window — abandons the fast path
// and reports false; Run then falls back to the executing path, which
// reseeds the store. The report is byte-identical (Report.Fingerprint)
// to a cold run's: every number in it comes from the same stored
// measurements the cold run produced.
func runFromStore(t *Target, plan Plan, opts Options, limit uint64, wallStart time.Time) (*Report, bool) {
	raw, ok := opts.Store.Get(ffKey(t, plan, limit))
	if !ok {
		return nil, false
	}
	seq, err := decodeFFSeq(raw)
	if err != nil {
		return nil, false
	}
	windows := make([]WindowResult, len(seq.points))
	for i := range seq.points {
		key, err := windowKey(t, plan, seq.encs[i])
		if err != nil {
			return nil, false
		}
		wraw, ok := opts.Store.Get(key)
		if !ok {
			return nil, false
		}
		wr, err := decodeWindow(wraw)
		if err != nil {
			return nil, false
		}
		wr.Index = i
		wr.Start = seq.points[i]
		wr.Key = key.String()
		wr.Cached = true
		windows[i] = wr
	}
	rep := reconstruct(t, plan, seq.total, seq.exit, windows)
	rep.Timing.WallSeconds = time.Since(wallStart).Seconds()
	rep.Timing.WindowSeconds = rep.Timing.WallSeconds
	if rep.Timing.WallSeconds > 0 {
		rep.Timing.EffectiveKIPS = float64(seq.total) / rep.Timing.WallSeconds / 1000
	}
	rep.Timing.StoreHits = len(windows)
	return rep, true
}

// runWindows executes every sample window on a bounded pool, returning
// results in interval order regardless of completion order (same
// discipline as the bench runner, so reports are identical at any
// worker count).
func runWindows(t *Target, plan Plan, opts Options, pts []point) ([]WindowResult, error) {
	results := make([]WindowResult, len(pts))
	errs := make([]error, len(pts))
	if len(pts) == 0 {
		return results, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pts) {
		workers = len(pts)
	}
	var failed atomic.Bool
	next := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var core Core // built on first real window, reused via Restart
			for idx := range next {
				if failed.Load() {
					continue
				}
				res, err := runOneWindow(t, plan, opts, &core, idx, pts[idx])
				if err != nil {
					errs[idx] = fmt.Errorf("sampling: window %d @%d: %w", idx, pts[idx].start, err)
					failed.Store(true)
					continue
				}
				results[idx] = res
			}
		}()
	}
	for i := range pts {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runOneWindow measures one sample window: result-store lookup first,
// else Restart-from-checkpoint, discarded warmup, measured window.
// *core is the worker's reusable core, built lazily so fully-cached
// sweeps construct no cores at all.
func runOneWindow(t *Target, plan Plan, opts Options, core *Core, idx int, p point) (WindowResult, error) {
	key, err := windowKey(t, plan, p.enc)
	if err != nil {
		return WindowResult{}, err
	}
	if opts.Store != nil {
		if raw, ok := opts.Store.Get(key); ok {
			if wr, err := decodeWindow(raw); err == nil {
				wr.Index = idx
				wr.Start = p.start
				wr.Key = key.String()
				wr.Cached = true
				return wr, nil
			}
			// Corrupted entry: fall through and recompute.
		}
	}

	if *core == nil {
		*core = t.newCore()
	}
	c := *core
	if err := c.Restart(t.Img, p.ck); err != nil {
		return WindowResult{}, err
	}
	c.AdoptWarm(p.warm)
	warmup, window := plan.Warmup, plan.Window
	if p.start == 0 && plan.Window == plan.Interval {
		// Dense tiling plans measure every instruction, and the entry
		// window restores at instruction 0, where cold state *is* the
		// true machine state — a warmup would discard real instructions
		// no other window measures. Promote it into the measured window
		// instead, so the tiling covers the program gaplessly from the
		// first instruction. Sparse plans do the opposite: there the
		// warmup's job is to discard the one-time cold-start transient,
		// which would otherwise be extrapolated to the entire first
		// interval (Interval/Window× its real weight).
		window += warmup
		warmup = 0
	}
	ropts := engine.Options{NoIdleSkip: opts.NoIdleSkip, Interrupt: opts.Interrupt}
	if warmup > 0 && !c.Exited() {
		// The core's retired counter restarts at zero, so bounds are
		// window-relative. MaxInsns may overshoot by up to CommitWidth-1
		// — deterministically, so cached and fresh results still agree.
		ropts.MaxInsns = warmup
		if _, err := c.Run(ropts); err != nil {
			return WindowResult{}, fmt.Errorf("warmup: %w", err)
		}
	}
	s0 := c.Stats()
	if !c.Exited() {
		ropts.MaxInsns = s0.Retired + window
		if _, err := c.Run(ropts); err != nil {
			return WindowResult{}, fmt.Errorf("measure: %w", err)
		}
	}
	delta := c.Stats().Sub(s0)

	wr := WindowResult{
		Index:         idx,
		Start:         p.start,
		Key:           key.String(),
		WarmupRetired: s0.Retired,
		Retired:       delta.Retired,
		Cycles:        delta.Cycles,
		Stats:         delta,
	}
	if wr.Retired > 0 {
		wr.CPI = float64(wr.Cycles) / float64(wr.Retired)
	}
	if err := validateWindow(wr); err != nil {
		return WindowResult{}, err
	}
	if opts.Store != nil {
		if err := opts.Store.Put(key, encodeWindow(wr)); err != nil {
			return WindowResult{}, fmt.Errorf("store put: %w", err)
		}
	}
	return wr, nil
}
