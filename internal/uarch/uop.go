package uarch

// Class is the execution class of a micro-operation; it selects the
// functional-unit pool and latency.
type Class uint8

const (
	ClassALU Class = iota
	ClassMul
	ClassDiv
	ClassLoad
	ClassStore
	ClassBranch // conditional branch
	ClassJump   // unconditional direct/indirect jump
	ClassSys    // serializing environment call
	ClassNop
	NumClasses
)

var classNames = [NumClasses]string{
	"alu", "mul", "div", "load", "store", "branch", "jump", "sys", "nop",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// UOpState tracks a µop through the out-of-order backend.
type UOpState uint8

const (
	// StateDispatched: in ROB and scheduler, waiting for operands.
	StateDispatched UOpState = iota
	// StateIssued: selected, executing in a functional unit.
	StateIssued
	// StateDone: result produced; waiting to retire.
	StateDone
)

// UOp is an in-flight micro-operation. The ISA-specific front ends fill
// the physical-register fields; the shared backend machinery (scheduler,
// LSQ, ROB bookkeeping) reads only what is here. The cores embed UOp in a
// per-core µop struct carrying the decoded instruction and ISA-specific
// payload fields, allocated from a per-core arena so the per-cycle step
// path performs no heap allocation.
type UOp struct {
	Seq   uint64 // global dynamic sequence number
	PC    uint32
	Class Class

	// Physical registers: -1 = none. A source of -1 is always ready.
	Dest int32
	Src1 int32
	Src2 int32

	// Front-end prediction state.
	PredTaken  bool
	PredTarget uint32
	PredMeta   uint64   // direction predictor checkpoint
	RASSnap    []uint32 // return-address-stack checkpoint (control ops)

	// Execution results (filled at execute).
	Taken   bool
	Target  uint32 // actual next PC for control ops
	Result  uint32
	MemAddr uint32
	MemSize uint8

	IsLoad  bool
	IsStore bool
	// StoreData is the value to write (valid when DataReady).
	StoreData uint32

	State     UOpState
	IssuedAt  int64
	ReadyAt   int64 // cycle the result becomes available
	Completed bool

	// Squashed marks wrong-path µops awaiting drain.
	Squashed bool
}
