package uarch

import "testing"

// ringOp is one step of a table-driven ring scenario.
type ringOp struct {
	op   string // "pushBack", "pushFront", "popFront", "truncate", "clear"
	v    int    // value pushed, expected pop result, or truncate length
	want []int  // expected head-to-tail contents after the op
}

func checkRing(t *testing.T, r *Ring[int], step int, want []int) {
	t.Helper()
	if r.Len() != len(want) {
		t.Fatalf("step %d: Len=%d, want %d", step, r.Len(), len(want))
	}
	for i, w := range want {
		if got := r.At(i); got != w {
			t.Fatalf("step %d: At(%d)=%d, want %d", step, i, got, w)
		}
	}
	if len(want) > 0 && r.Front() != want[0] {
		t.Fatalf("step %d: Front()=%d, want %d", step, r.Front(), want[0])
	}
}

// TestRingScenarios drives the ring through the access patterns the
// cores rely on: FIFO flow with head wraparound (fetch queue), PushFront
// after PopFront (the recovery walk returning physicals to the free
// list in reverse), truncation (ROB squash), and clearing.
func TestRingScenarios(t *testing.T) {
	cases := []struct {
		name string
		cap  int
		ops  []ringOp
	}{
		{
			name: "fifo wraparound",
			cap:  4, // rounds up to 8; 12 pushes with interleaved pops wrap the head
			ops: []ringOp{
				{op: "pushBack", v: 1, want: []int{1}},
				{op: "pushBack", v: 2, want: []int{1, 2}},
				{op: "popFront", v: 1, want: []int{2}},
				{op: "pushBack", v: 3, want: []int{2, 3}},
				{op: "pushBack", v: 4, want: []int{2, 3, 4}},
				{op: "pushBack", v: 5, want: []int{2, 3, 4, 5}},
				{op: "pushBack", v: 6, want: []int{2, 3, 4, 5, 6}},
				{op: "pushBack", v: 7, want: []int{2, 3, 4, 5, 6, 7}},
				{op: "pushBack", v: 8, want: []int{2, 3, 4, 5, 6, 7, 8}},
				{op: "popFront", v: 2, want: []int{3, 4, 5, 6, 7, 8}},
				{op: "popFront", v: 3, want: []int{4, 5, 6, 7, 8}},
				{op: "pushBack", v: 9, want: []int{4, 5, 6, 7, 8, 9}},
				{op: "pushBack", v: 10, want: []int{4, 5, 6, 7, 8, 9, 10}},
				{op: "pushBack", v: 11, want: []int{4, 5, 6, 7, 8, 9, 10, 11}},
				{op: "popFront", v: 4, want: []int{5, 6, 7, 8, 9, 10, 11}},
			},
		},
		{
			name: "pushFront reverses like the recovery walk",
			cap:  8,
			ops: []ringOp{
				{op: "pushBack", v: 1, want: []int{1}},
				{op: "pushBack", v: 2, want: []int{1, 2}},
				{op: "popFront", v: 1, want: []int{2}},
				{op: "popFront", v: 2, want: []int{}},
				// A walk frees the youngest first; PushFront restores the
				// original allocation order at the head.
				{op: "pushFront", v: 2, want: []int{2}},
				{op: "pushFront", v: 1, want: []int{1, 2}},
				{op: "popFront", v: 1, want: []int{2}},
			},
		},
		{
			name: "pushFront wraps below index zero",
			cap:  8,
			ops: []ringOp{
				// head starts at 0; PushFront must wrap to the top slot.
				{op: "pushFront", v: 9, want: []int{9}},
				{op: "pushFront", v: 8, want: []int{8, 9}},
				{op: "pushBack", v: 10, want: []int{8, 9, 10}},
				{op: "popFront", v: 8, want: []int{9, 10}},
			},
		},
		{
			name: "truncate drops the tail",
			cap:  8,
			ops: []ringOp{
				{op: "pushBack", v: 1, want: []int{1}},
				{op: "pushBack", v: 2, want: []int{1, 2}},
				{op: "pushBack", v: 3, want: []int{1, 2, 3}},
				{op: "truncate", v: 1, want: []int{1}},
				{op: "pushBack", v: 4, want: []int{1, 4}},
				{op: "truncate", v: 0, want: []int{}},
				{op: "pushBack", v: 5, want: []int{5}},
			},
		},
		{
			name: "clear then reuse",
			cap:  8,
			ops: []ringOp{
				{op: "pushBack", v: 1, want: []int{1}},
				{op: "pushBack", v: 2, want: []int{1, 2}},
				{op: "clear", want: []int{}},
				{op: "pushBack", v: 3, want: []int{3}},
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := NewRing[int](tc.cap)
			for i, op := range tc.ops {
				switch op.op {
				case "pushBack":
					r.PushBack(op.v)
				case "pushFront":
					r.PushFront(op.v)
				case "popFront":
					if got := r.PopFront(); got != op.v {
						t.Fatalf("step %d: PopFront=%d, want %d", i, got, op.v)
					}
				case "truncate":
					r.Truncate(op.v)
				case "clear":
					r.Clear()
				}
				checkRing(t, r, i, op.want)
			}
		})
	}
}

// TestRingGrowthPreservesOrder overflows a wrapped ring and checks the
// relocation kept head-to-tail order (the only allocating path; the
// cores pre-size rings so it never runs after warmup).
func TestRingGrowthPreservesOrder(t *testing.T) {
	r := NewRing[int](8)
	// Wrap the head first so growth must unwrap a split occupancy.
	for i := 0; i < 6; i++ {
		r.PushBack(i)
	}
	for i := 0; i < 6; i++ {
		if got := r.PopFront(); got != i {
			t.Fatalf("warmup pop %d: got %d", i, got)
		}
	}
	for i := 0; i < 20; i++ { // overflows capacity 8 mid-stream
		r.PushBack(100 + i)
	}
	if r.Cap() < 20 {
		t.Fatalf("Cap=%d after 20 pushes", r.Cap())
	}
	for i := 0; i < 20; i++ {
		if got := r.PopFront(); got != 100+i {
			t.Fatalf("pop %d: got %d, want %d", i, got, 100+i)
		}
	}
}

// TestRingSteadyStateDoesNotAllocate pins the ring's core contract: once
// occupancy stays at or below the high-water mark, push/pop traffic
// allocates nothing.
func TestRingSteadyStateDoesNotAllocate(t *testing.T) {
	r := NewRing[int](16)
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			r.PushBack(i)
		}
		for i := 0; i < 16; i++ {
			r.PopFront()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state ring traffic allocates %.1f per run, want 0", allocs)
	}
}

// TestRingPanics pins the guard rails the cores rely on (every pop is
// occupancy-checked, so a panic here means a core bug, not input).
func TestRingPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRing[int](4)
	expectPanic("PopFront empty", func() { r.PopFront() })
	expectPanic("At out of range", func() { r.At(0) })
	expectPanic("Truncate negative", func() { r.Truncate(-1) })
	r.PushBack(1)
	expectPanic("Truncate past len", func() { r.Truncate(2) })
	expectPanic("At past len", func() { r.At(1) })
}
