package uarch

// Reset methods: the batched-simulation reuse contract (DESIGN.md §12).
//
// Every stateful microarchitectural component can be returned to its
// power-on state in place, without reallocating its backing arrays. A
// core's Reset composes these so that a reused core is observably
// identical to a freshly constructed one — same Stats, same traces,
// same retire stream, bit for bit — while the µop arena, rings, cache
// arrays, and predictor tables keep their memory across runs.

// Reset invalidates every line and zeroes the hit/miss counters and the
// LRU clock, as if the cache had just been built.
func (c *Cache) Reset() {
	for i := range c.tags {
		t, l := c.tags[i], c.lru[i]
		for w := range t {
			t[w] = 0
			l[w] = 0
		}
	}
	c.tick = 0
	c.Hits = 0
	c.Misses = 0
}

// Reset returns the whole memory system to power-on state: all levels
// cold, no in-flight misses, prefetch streams forgotten, counters zero.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	if h.L3 != nil {
		h.L3.Reset()
	}
	for i := range h.mshr {
		h.mshr[i] = 0
	}
	if h.prefetch != nil {
		h.prefetch.reset()
	}
	h.DemandFetches = 0
	h.DemandData = 0
	h.Prefetches = 0
}

func (s *streamPrefetcher) reset() {
	s.last = [8]uint32{}
	s.valid = [8]bool{}
	s.next = 0
}

// Reset invalidates every BTB entry and zeroes the counters.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
	b.Hits = 0
	b.Misses = 0
}

// Reset empties the return-address stack, keeping its backing array.
func (r *RAS) Reset() { r.stack = r.stack[:0] }

// Reset forgets all collision history and zeroes the counters.
func (m *MemDepPredictor) Reset() {
	for i := range m.table {
		m.table[i] = 0
	}
	m.Violations = 0
	m.Predictions = 0
	m.Conservative = 0
}

// Reset empties both queues. Slots are recycled in place (push fully
// overwrites a slot), so stale entries need no zeroing.
func (q *LSQ) Reset() {
	q.loads.head, q.loads.n = 0, 0
	q.stores.head, q.stores.n = 0, 0
}

// Reset implements DirPredictor: weakly-not-taken counters, empty
// history — the state NewGshare builds.
func (g *Gshare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

// Reset implements DirPredictor: the state NewTAGE builds, including the
// allocation-tiebreak RNG seed (runs after Reset are deterministic and
// identical to a fresh predictor).
func (t *TAGE) Reset() {
	for i := range t.base {
		t.base[i] = 1
	}
	for i := range t.tables {
		tbl := t.tables[i]
		for j := range tbl {
			tbl[j] = tageEntry{}
		}
	}
	t.hist = tageHistory{}
	t.useAlt = 0
	t.rng = 0x9E3779B9
	t.metas = [tageMetaRing]tageMeta{}
	t.nextID = 0
	t.Allocations = 0
}

// Reset implements DirPredictor (the oracle keeps no state; OutcomeFn is
// configuration and survives).
func (o *Oracle) Reset() {}
