package uarch

import "errors"

// ErrInterrupted is returned by a core's Run when the caller-provided
// interrupt flag (Options.Interrupt on either core) was raised while
// the simulation was in flight. The daemon and the experiment CLIs set
// the flag from signal handlers so Ctrl-C / SIGTERM cancels in-flight
// sweep points promptly instead of waiting out the run.
var ErrInterrupted = errors.New("simulation interrupted")
