package uarch

import (
	"reflect"
	"testing"
)

// fillDistinct sets every settable numeric field (and array element) of v
// to a distinct non-zero value via reflection.
func fillDistinct(v reflect.Value, next *uint64) {
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillDistinct(v.Field(i), next)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			fillDistinct(v.Index(i), next)
		}
	case reflect.Int64:
		*next++
		v.SetInt(int64(*next))
	case reflect.Uint64:
		*next++
		v.SetUint(*next)
	default:
		panic("unhandled Stats field kind " + v.Kind().String())
	}
}

func assertZero(t *testing.T, v reflect.Value, path string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			assertZero(t, v.Field(i), path+"."+v.Type().Field(i).Name)
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			assertZero(t, v.Index(i), path)
		}
	case reflect.Int64:
		if v.Int() != 0 {
			t.Errorf("%s = %d after s.Sub(s); Sub does not subtract this field", path, v.Int())
		}
	case reflect.Uint64:
		if v.Uint() != 0 {
			t.Errorf("%s = %d after s.Sub(s); Sub does not subtract this field", path, v.Uint())
		}
	default:
		t.Fatalf("%s has unhandled kind %v", path, v.Kind())
	}
}

// TestStatsSubCoversAllFields proves Stats.Sub subtracts every numeric
// field: with all fields set to distinct non-zero values, s.Sub(s) must
// be identically zero — any field Sub forgets keeps its value and fails.
// This keeps the handwritten Sub in lockstep with the struct as counters
// are added.
func TestStatsSubCoversAllFields(t *testing.T) {
	var s Stats
	var seed uint64
	fillDistinct(reflect.ValueOf(&s).Elem(), &seed)
	d := s.Sub(s)
	assertZero(t, reflect.ValueOf(d), "Stats")
}

func TestStatsSubDelta(t *testing.T) {
	var a, b Stats
	a.Cycles, b.Cycles = 100, 350
	a.Retired, b.Retired = 80, 300
	a.RetiredByClass[0], b.RetiredByClass[0] = 80, 300
	d := b.Sub(a)
	if d.Cycles != 250 || d.Retired != 220 || d.RetiredByClass[0] != 220 {
		t.Fatalf("Sub delta wrong: %+v", d)
	}
}
