package uarch

// MemDepMode selects how loads treat older unresolved store addresses.
type MemDepMode int

const (
	// MemDepPredict uses the collision-history predictor (default).
	MemDepPredict MemDepMode = iota
	// MemDepAlwaysSpeculate always bypasses unknown store addresses.
	MemDepAlwaysSpeculate
	// MemDepAlwaysWait always waits for older store addresses.
	MemDepAlwaysWait
)

// PredictorKind selects the conditional branch predictor.
type PredictorKind int

const (
	// PredGshare is the evaluation's default (global history 10 bits,
	// 32K entries).
	PredGshare PredictorKind = iota
	// PredTAGE is the 8-component TAGE used in Fig 14.
	PredTAGE
	// PredOracle predicts perfectly (the "SS no penalty" idealization of
	// Fig 13 uses ZeroMispredictPenalty instead, but an oracle is useful
	// for ablations).
	PredOracle
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes  int
	Ways       int
	LineBytes  int
	HitLatency int
}

// Config holds every model parameter of Table I plus the experiment
// knobs. The same struct configures both cores; fields that apply to only
// one (e.g. MaxDistance) are ignored by the other.
type Config struct {
	Name string

	FetchWidth      int
	FrontEndLatency int // fetch-to-dispatch stages: SS 8, STRAIGHT 6
	ROBSize         int
	IssueWidth      int
	SchedulerSize   int
	RegFileSize     int // SS physical registers; STRAIGHT derives MAX_RP
	LQSize          int
	SQSize          int

	NumALU int
	NumMul int
	NumDiv int
	NumBr  int
	NumMem int

	CommitWidth int

	Predictor      PredictorKind
	GshareHistBits int
	GshareEntries  int
	BTBEntries     int
	RASEntries     int

	L1I        CacheConfig
	L1D        CacheConfig
	L2         CacheConfig
	L3         *CacheConfig // nil = absent (2-way models have no L3)
	MemLatency int

	// MaxDistance is the STRAIGHT model's maximum operand distance
	// (31 in the evaluated models; MAX_RP = MaxDistance + ROBSize).
	MaxDistance int

	// ZeroMispredictPenalty idealizes recovery: the correct path is
	// refetched in the very next cycle with no walk or redirect cost
	// (the "SS no penalty" bars of Fig 13).
	ZeroMispredictPenalty bool

	// NoPrefetch disables the L1D stream prefetcher (ablation).
	NoPrefetch bool

	// MSHRs caps concurrently outstanding misses (0 = default 8).
	MSHRs int

	// MemDep selects the memory-dependence policy (ablation; the default
	// is the collision-history predictor).
	MemDep MemDepMode

	// SPAddPerGroup caps SPADD instructions renamed per cycle
	// (STRAIGHT §III-B; the cascaded SP adders limit).
	SPAddPerGroup int

	// CGBlockSize caps the instructions per coarse-grain block in the
	// CG-OoO comparison core (arXiv 1606.01607): blocks issue in order
	// internally, out of order with respect to each other. Blocks also
	// end at every control instruction. 0 = the cgcore default (8).
	CGBlockSize int

	// FuncLatency overrides (zero = defaults: ALU 1, MUL 3, DIV 20).
	ALULatency int
	MulLatency int
	DivLatency int
}

func (c Config) alu() int {
	if c.ALULatency == 0 {
		return 1
	}
	return c.ALULatency
}

func (c Config) mul() int {
	if c.MulLatency == 0 {
		return 3
	}
	return c.MulLatency
}

func (c Config) div() int {
	if c.DivLatency == 0 {
		return 20
	}
	return c.DivLatency
}

// LatencyFor returns the execution latency of a class.
//
//lint:hotpath
func (c Config) LatencyFor(cl Class) int {
	switch cl {
	case ClassMul:
		return c.mul()
	case ClassDiv:
		return c.div()
	default:
		return c.alu()
	}
}

// MaxRP returns the STRAIGHT physical register count:
// max distance + ROB entries (§III-B).
func (c Config) MaxRP() int { return c.MaxDistance + c.ROBSize }

// Common cache settings of Table I.
func tableICaches(threeLevel bool) (l1i, l1d, l2 CacheConfig, l3 *CacheConfig) {
	l1i = CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 4}
	l1d = CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, HitLatency: 4}
	l2 = CacheConfig{SizeBytes: 256 << 10, Ways: 4, LineBytes: 64, HitLatency: 12}
	if threeLevel {
		l3 = &CacheConfig{SizeBytes: 2 << 20, Ways: 4, LineBytes: 64, HitLatency: 42}
	}
	return
}

func baseConfig(name string) Config {
	return Config{
		Name:           name,
		GshareHistBits: 10,
		GshareEntries:  32 << 10,
		BTBEntries:     4096,
		RASEntries:     16,
		MemLatency:     200,
		SPAddPerGroup:  1,
	}
}

// SS2Way is the 2-way superscalar model of Table I.
func SS2Way() Config {
	c := baseConfig("SS-2way")
	c.FetchWidth = 2
	c.FrontEndLatency = 8
	c.ROBSize = 64
	c.IssueWidth = 2
	c.SchedulerSize = 16
	c.RegFileSize = 96
	c.LQSize, c.SQSize = 48, 48
	c.NumALU, c.NumMul, c.NumDiv, c.NumBr, c.NumMem = 2, 1, 1, 2, 2
	c.CommitWidth = 3
	c.L1I, c.L1D, c.L2, c.L3 = tableICaches(false)
	return c
}

// Straight2Way is the 2-way STRAIGHT model of Table I.
func Straight2Way() Config {
	c := SS2Way()
	c.Name = "STRAIGHT-2way"
	c.FrontEndLatency = 6
	c.MaxDistance = 31 // MAX_RP = 31 + 64 = 95 (+zero) ~ the 96-entry RF
	return c
}

// SS4Way is the 4-way superscalar model of Table I.
func SS4Way() Config {
	c := baseConfig("SS-4way")
	c.FetchWidth = 6
	c.FrontEndLatency = 8
	c.ROBSize = 224
	c.IssueWidth = 4
	c.SchedulerSize = 96
	c.RegFileSize = 256
	c.LQSize, c.SQSize = 72, 56
	c.NumALU, c.NumMul, c.NumDiv, c.NumBr, c.NumMem = 4, 2, 1, 4, 4
	c.CommitWidth = 4
	c.L1I, c.L1D, c.L2, c.L3 = tableICaches(true)
	return c
}

// Straight4Way is the 4-way STRAIGHT model of Table I.
func Straight4Way() Config {
	c := SS4Way()
	c.Name = "STRAIGHT-4way"
	c.FrontEndLatency = 6
	c.MaxDistance = 31 // MAX_RP = 31 + 224 = 255 (+zero) ~ the 256-entry RF
	return c
}

// memBound tightens a Table I model into the memory-bound regime the
// idle-skip fast path targets. This is a kernel-benchmark
// configuration, not a paper model: first-level caches shrunk until the
// working set thrashes, a small L2, no L3, no prefetcher, few miss
// registers, and a long memory latency, so runs are dominated by
// drained-pipeline miss windows.
func memBound(c Config) Config {
	c.Name += "-membound"
	c.L1I = CacheConfig{SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatency: 4}
	c.L1D = CacheConfig{SizeBytes: 512, Ways: 2, LineBytes: 64, HitLatency: 4}
	c.L2 = CacheConfig{SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, HitLatency: 12}
	c.L3 = nil
	c.NoPrefetch = true
	c.MemLatency = 1000
	c.MSHRs = 2
	return c
}

// SS4WayMemBound is the memory-bound benchmark variant of SS4Way.
func SS4WayMemBound() Config { return memBound(SS4Way()) }

// CG4Way is the 4-way coarse-grain OoO comparison model: the SS4Way
// machine with issue constrained to in-order within 8-instruction
// blocks (CG-OoO's block-level out-of-order, arXiv 1606.01607). It
// shares the SS front end, rename and recovery model, so IPC deltas
// against SS4Way isolate the scheduling restriction.
func CG4Way() Config {
	c := SS4Way()
	c.Name = "CG-4way"
	c.CGBlockSize = 8
	return c
}

// CG2Way is the 2-way coarse-grain OoO comparison model (see CG4Way).
func CG2Way() Config {
	c := SS2Way()
	c.Name = "CG-2way"
	c.CGBlockSize = 8
	return c
}

// CG4WayMemBound is the memory-bound benchmark variant of CG4Way.
func CG4WayMemBound() Config { return memBound(CG4Way()) }

// Straight4WayMemBound is the memory-bound benchmark variant of
// Straight4Way.
func Straight4WayMemBound() Config { return memBound(Straight4Way()) }
