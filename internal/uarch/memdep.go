package uarch

// MemDepPredictor is a collision-history memory-dependence predictor
// (paper §V-A lists "memory dependency prediction"). Loads that have
// previously violated (executed before an older overlapping store) are
// predicted "conservative" and wait for all older store addresses;
// others speculate freely. Entries decay so stale conservatism fades.
//
//lint:hotpath
type MemDepPredictor struct {
	table []uint8 // 2-bit saturating "collided" counters
	mask  uint32  //lint:resetless table geometry, fixed at construction

	Violations   uint64
	Predictions  uint64
	Conservative uint64
}

// NewMemDepPredictor builds the predictor with a power-of-two table.
func NewMemDepPredictor(entries int) *MemDepPredictor {
	return &MemDepPredictor{table: make([]uint8, entries), mask: uint32(entries - 1)}
}

func (m *MemDepPredictor) idx(pc uint32) uint32 { return (pc >> 2) & m.mask }

// ShouldWait predicts whether the load at pc must wait for older stores.
func (m *MemDepPredictor) ShouldWait(pc uint32) bool {
	m.Predictions++
	if m.table[m.idx(pc)] >= 2 {
		m.Conservative++
		return true
	}
	return false
}

// RecordViolation trains the predictor after a disambiguation flush.
func (m *MemDepPredictor) RecordViolation(pc uint32) {
	m.Violations++
	i := m.idx(pc)
	if m.table[i] < 3 {
		m.table[i] = 3
	}
}

// RecordSuccess decays conservatism when a predicted-wait load turns out
// independent.
func (m *MemDepPredictor) RecordSuccess(pc uint32) {
	i := m.idx(pc)
	if m.table[i] > 0 {
		m.table[i]--
	}
}
