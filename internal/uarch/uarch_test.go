package uarch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 3})
	if c.Lookup(0x1000) {
		t.Error("cold miss expected")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Error("hit after fill expected")
	}
	if !c.Lookup(0x1020) {
		t.Error("same line must hit")
	}
	if c.Lookup(0x1040) {
		t.Error("next line must miss")
	}
	if c.HitLatency() != 3 || c.LineBytes() != 64 {
		t.Error("config accessors")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B lines: three lines mapping to the same set.
	c := NewCache(CacheConfig{SizeBytes: 1024, Ways: 2, LineBytes: 64, HitLatency: 1})
	sets := 1024 / (64 * 2)
	a := uint32(0)
	b := uint32(sets * 64)
	d := uint32(2 * sets * 64)
	c.Fill(a)
	c.Fill(b)
	c.Lookup(a) // a most recent
	c.Fill(d)   // evicts b
	if !c.Probe(a) {
		t.Error("a should survive")
	}
	if c.Probe(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be present")
	}
}

// TestCacheCoherentWithOracle: random fills/lookups never report a hit for
// a line never filled and never panic (property test).
func TestCacheCoherentWithOracle(t *testing.T) {
	c := NewCache(CacheConfig{SizeBytes: 4096, Ways: 4, LineBytes: 64, HitLatency: 1})
	filled := make(map[uint32]bool)
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		addr := uint32(r.Intn(1 << 20))
		line := addr &^ 63
		if r.Intn(2) == 0 {
			c.Fill(addr)
			filled[line] = true
		} else if c.Lookup(addr) && !filled[line] {
			t.Fatalf("phantom hit at %#x", addr)
		}
	}
}

func TestHierarchyLatencies(t *testing.T) {
	cfg := SS4Way()
	h := NewHierarchy(cfg)
	// Cold data access: L1 + L2 + L3 + memory.
	want := cfg.L1D.HitLatency + cfg.L2.HitLatency + cfg.L3.HitLatency + cfg.MemLatency
	if got := h.AccessData(0, 0x10000); got != want {
		t.Errorf("cold access latency %d, want %d", got, want)
	}
	// Now hot in L1 (probe later so the MSHR has drained).
	if got := h.AccessData(1000, 0x10000); got != cfg.L1D.HitLatency {
		t.Errorf("hot access latency %d, want %d", got, cfg.L1D.HitLatency)
	}
	if !h.WouldHitL1D(0x10000) || h.WouldHitL1D(0x999000) {
		t.Error("WouldHitL1D")
	}
}

func TestStreamPrefetcher(t *testing.T) {
	cfg := SS2Way()
	h := NewHierarchy(cfg)
	// Sequential misses establish a stream; later lines should be
	// prefetched into L1D.
	h.AccessData(0, 0x40000)
	h.AccessData(1000, 0x40040) // stream detected: prefetches 0x40080, 0x400C0
	if h.Prefetches == 0 {
		t.Fatal("stream prefetcher did not trigger")
	}
	if got := h.AccessData(2000, 0x40080); got != cfg.L1D.HitLatency {
		t.Errorf("prefetched line should hit L1D, latency %d", got)
	}
}

func TestGshareLearnsPattern(t *testing.T) {
	g := NewGshare(10, 1<<15)
	pc := uint32(0x1000)
	// Alternating pattern: with history, gshare should learn it well.
	correct := 0
	for i := 0; i < 2000; i++ {
		actual := i%2 == 0
		pred, meta := g.Predict(pc)
		if pred == actual {
			correct++
		} else {
			g.Recover(meta, actual)
		}
		g.Update(pc, actual, meta)
	}
	if correct < 1800 {
		t.Errorf("gshare learned alternation poorly: %d/2000", correct)
	}
}

func TestTAGELearnsLongPattern(t *testing.T) {
	tg := NewTAGE()
	pc := uint32(0x2000)
	// Period-7 pattern is hard for a 2-bit bimodal but easy for TAGE.
	pattern := []bool{true, true, false, true, false, false, true}
	correct := 0
	total := 7000
	for i := 0; i < total; i++ {
		actual := pattern[i%len(pattern)]
		pred, meta := tg.Predict(pc)
		if pred == actual {
			correct++
		} else {
			tg.Recover(meta, actual)
		}
		tg.Update(pc, actual, meta)
	}
	frac := float64(correct) / float64(total)
	t.Logf("TAGE accuracy on period-7: %.3f (allocations %d)", frac, tg.Allocations)
	if frac < 0.90 {
		t.Errorf("TAGE accuracy %.3f too low for periodic pattern", frac)
	}
}

func TestTAGEBeatsBimodalOnCorrelated(t *testing.T) {
	// Branch outcome equals outcome 3 branches ago — pure history
	// correlation, invisible to the bimodal base.
	tg := NewTAGE()
	r := rand.New(rand.NewSource(7))
	hist := []bool{true, false, true}
	pc := uint32(0x3000)
	correct := 0
	total := 20000
	for i := 0; i < total; i++ {
		actual := hist[len(hist)-3]
		pred, meta := tg.Predict(pc)
		if pred == actual {
			correct++
		} else {
			tg.Recover(meta, actual)
		}
		tg.Update(pc, actual, meta)
		hist = append(hist, r.Intn(2) == 0)
		_ = hist
		hist[len(hist)-1] = actual // keep the defined correlation
	}
	frac := float64(correct) / float64(total)
	t.Logf("TAGE accuracy on correlated: %.3f", frac)
	if frac < 0.95 {
		t.Errorf("TAGE should nail 3-back correlation, got %.3f", frac)
	}
}

func TestTAGERecoverRestoresHistory(t *testing.T) {
	tg := NewTAGE()
	before := tg.hist
	_, meta := tg.Predict(0x4000)
	tg.Recover(meta, true)
	var want tageHistory
	want = before
	want.push(true)
	if tg.hist != want {
		t.Error("Recover must rebuild history from the checkpoint")
	}
}

func TestBTBAndRAS(t *testing.T) {
	b := NewBTB(256)
	if _, ok := b.Lookup(0x100); ok {
		t.Error("cold BTB hit")
	}
	b.Insert(0x100, 0x2000)
	if tgt, ok := b.Lookup(0x100); !ok || tgt != 0x2000 {
		t.Error("BTB miss after insert")
	}
	// Aliasing entry replaces.
	b.Insert(0x100+256*4, 0x3000)
	if _, ok := b.Lookup(0x100); ok {
		t.Error("conflicting tag should miss")
	}

	r := NewRAS(4)
	r.Push(1)
	r.Push(2)
	snap := r.Snapshot()
	r.Push(3)
	if v, _ := r.Pop(); v != 3 {
		t.Error("RAS pop order")
	}
	r.Restore(snap)
	if v, _ := r.Pop(); v != 2 {
		t.Error("RAS restore")
	}
	// Overflow drops the oldest.
	r2 := NewRAS(2)
	r2.Push(1)
	r2.Push(2)
	r2.Push(3)
	if v, _ := r2.Pop(); v != 3 {
		t.Error("RAS overflow keeps newest")
	}
	if v, _ := r2.Pop(); v != 2 {
		t.Error("RAS overflow keeps second")
	}
	if _, ok := r2.Pop(); ok {
		t.Error("RAS should be empty (oldest entry was dropped on overflow)")
	}
}

func TestLSQForwardingAndViolations(t *testing.T) {
	q := NewLSQ(8, 8)
	st := &UOp{Seq: 1, IsStore: true}
	ld := &UOp{Seq: 2, IsLoad: true}
	se := q.Allocate(st)
	le := q.Allocate(ld)

	// Load with older unknown store address: must wait unless speculating.
	le.Addr, le.Size, le.AddrReady = 0x100, 4, true
	if res, _ := q.LookupLoad(le, false); res != LoadMustWait {
		t.Error("conservative load must wait for unknown store address")
	}
	if res, _ := q.LookupLoad(le, true); res != LoadFromMemory {
		t.Error("speculative load should bypass unknown store")
	}
	le.Executed = true

	// Store resolves to the same address: violation on the younger load.
	se.Addr, se.Size, se.AddrReady = 0x100, 4, true
	se.Data, se.DataReady = 0xABCD, true
	if v := q.OldestViolation(se); v != le {
		t.Fatalf("expected violation on the load, got %v", v)
	}

	// After re-execution the load forwards.
	le.Executed = false
	if res, v := q.LookupLoad(le, true); res != LoadForwarded || v != 0xABCD {
		t.Errorf("forwarding failed: %v %#x", res, v)
	}

	// Sub-word containment forwarding: byte 1 of 0x0000ABCD is 0xAB.
	le.Addr, le.Size = 0x101, 1
	if res, v := q.LookupLoad(le, true); res != LoadForwarded || v != 0xAB {
		t.Errorf("byte extract failed: %v %#x", res, v)
	}
	// Partial overlap must wait.
	le.Addr, le.Size = 0x102, 4
	if res, _ := q.LookupLoad(le, true); res != LoadMustWait {
		t.Error("partial overlap must wait")
	}
}

func TestLSQSquashAndRetire(t *testing.T) {
	q := NewLSQ(4, 4)
	u1 := &UOp{Seq: 1, IsLoad: true}
	u2 := &UOp{Seq: 2, IsStore: true}
	u3 := &UOp{Seq: 3, IsLoad: true}
	q.Allocate(u1)
	q.Allocate(u2)
	q.Allocate(u3)
	q.SquashYounger(2)
	l, s := q.Occupancy()
	if l != 1 || s != 1 {
		t.Errorf("after squash: %d loads %d stores", l, s)
	}
	q.Retire(u1)
	q.Retire(u2)
	l, s = q.Occupancy()
	if l != 0 || s != 0 {
		t.Errorf("after retire: %d loads %d stores", l, s)
	}
	if !q.CanAllocate(true) || !q.CanAllocate(false) {
		t.Error("queues should have room")
	}
}

func TestMemDepPredictorTrains(t *testing.T) {
	m := NewMemDepPredictor(256)
	pc := uint32(0x500)
	if m.ShouldWait(pc) {
		t.Error("cold predictor should speculate")
	}
	m.RecordViolation(pc)
	if !m.ShouldWait(pc) {
		t.Error("after violation the load must wait")
	}
	for i := 0; i < 4; i++ {
		m.RecordSuccess(pc)
	}
	if m.ShouldWait(pc) {
		t.Error("conservatism should decay after successes")
	}
}

func TestConfigTableI(t *testing.T) {
	ss4, st4 := SS4Way(), Straight4Way()
	if ss4.ROBSize != 224 || ss4.SchedulerSize != 96 || ss4.RegFileSize != 256 {
		t.Error("SS4Way parameters do not match Table I")
	}
	if ss4.FrontEndLatency != 8 || st4.FrontEndLatency != 6 {
		t.Error("front-end latencies must be 8 (SS) and 6 (STRAIGHT)")
	}
	if st4.MaxRP() != 255 {
		t.Errorf("4-way MAX_RP = %d, want 255 (31+224)", st4.MaxRP())
	}
	st2 := Straight2Way()
	if st2.MaxRP() != 95 {
		t.Errorf("2-way MAX_RP = %d, want 95 (31+64)", st2.MaxRP())
	}
	if SS2Way().L3 != nil || ss4.L3 == nil {
		t.Error("L3 present only in 4-way models")
	}
	if ss4.LatencyFor(ClassMul) != 3 || ss4.LatencyFor(ClassALU) != 1 {
		t.Error("default FU latencies")
	}
}

// TestLSQOverlapProperty: forwarding never returns bytes that differ from
// a reference byte-array model.
func TestLSQOverlapProperty(t *testing.T) {
	f := func(storeAddr8, loadAddr8, storeSize2, loadSize2 uint8, data uint32) bool {
		sa := uint32(storeAddr8 % 64)
		la := uint32(loadAddr8 % 64)
		ss := uint8(1 << (storeSize2 % 3)) // 1,2,4
		ls := uint8(1 << (loadSize2 % 3))
		q := NewLSQ(4, 4)
		st := &UOp{Seq: 1, IsStore: true}
		ld := &UOp{Seq: 2, IsLoad: true}
		se := q.Allocate(st)
		le := q.Allocate(ld)
		se.Addr, se.Size, se.AddrReady = sa, ss, true
		se.Data, se.DataReady = data, true
		le.Addr, le.Size, le.AddrReady = la, ls, true
		res, v := q.LookupLoad(le, true)
		if res != LoadForwarded {
			return true // waiting or memory are always safe
		}
		// Reference: byte array.
		var mem [128]byte
		for i := uint8(0); i < ss; i++ {
			mem[sa+uint32(i)] = byte(data >> (8 * i))
		}
		var want uint32
		for i := uint8(0); i < ls; i++ {
			want |= uint32(mem[la+uint32(i)]) << (8 * i)
		}
		return v == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestMSHRQueueing(t *testing.T) {
	cfg := SS2Way()
	cfg.MSHRs = 1
	h := NewHierarchy(cfg)
	first := h.AccessData(0, 0x100000)
	// Second concurrent miss to a different line must queue behind the
	// only miss register.
	second := h.AccessData(0, 0x200000)
	if second <= first {
		t.Errorf("second miss (%d) should queue behind the first (%d)", second, first)
	}
	// After the first drains, a new miss pays only its own latency.
	third := h.AccessData(int64(first+second), 0x300000)
	if third > second {
		t.Errorf("drained MSHR should not queue: %d vs %d", third, second)
	}
}

func TestRingFIFOAndGrowth(t *testing.T) {
	r := NewRing[int](2)
	// Push past the initial capacity across a wrapped head so growth
	// must relinearize the buffer.
	r.PushBack(1)
	r.PushBack(2)
	if r.PopFront() != 1 {
		t.Fatal("FIFO order")
	}
	for v := 3; v <= 9; v++ {
		r.PushBack(v)
	}
	if r.Len() != 8 {
		t.Fatalf("len = %d, want 8", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if r.At(i) != i+2 {
			t.Fatalf("At(%d) = %d, want %d", i, r.At(i), i+2)
		}
	}
	if r.Front() != 2 {
		t.Fatal("Front")
	}

	// PushFront prepends (the SS recovery walk re-frees registers
	// tail-first with it).
	r.PushFront(1)
	if r.Front() != 1 || r.Len() != 9 {
		t.Fatal("PushFront")
	}

	// Truncate drops from the tail, keeping the oldest n.
	r.Truncate(3)
	if r.Len() != 3 || r.At(2) != 3 {
		t.Fatalf("Truncate: len=%d tail=%d", r.Len(), r.At(2))
	}

	r.Clear()
	if r.Len() != 0 {
		t.Fatal("Clear")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PopFront on empty ring should panic")
		}
	}()
	r.PopFront()
}
