package uarch

import (
	"fmt"
	"strings"
)

// Stats collects the simulation counters the experiments and the power
// model consume. Both cores fill the same struct so results are directly
// comparable.
//
//lint:stats
type Stats struct {
	Cycles  int64
	Retired uint64

	RetiredByClass [NumClasses]uint64

	// Branch behaviour.
	CondBranches     uint64
	Mispredicts      uint64
	TargetMispredict uint64 // BTB/RAS-caused redirects
	RecoveryStall    int64  // cycles the front end was blocked by recovery
	// (SS: ROB walk; STRAIGHT: the single restore)

	// Front-end activity (power model inputs).
	FetchedInsts  uint64
	RenameReads   uint64 // SS: RMT source lookups; STRAIGHT: 0
	RenameWrites  uint64 // SS: RMT destination updates; STRAIGHT: 0
	FreeListOps   uint64 // SS: free-list pops+pushes
	ROBWalkSteps  uint64 // SS: entries walked during recoveries
	RPAdditions   uint64 // STRAIGHT: operand-determination adds
	SPAddExecuted uint64 // STRAIGHT: SPADD in-order updates

	// Register file activity.
	RegReads  uint64
	RegWrites uint64

	// Scheduler activity.
	IQWakeups uint64
	IQIssued  uint64
	Replays   uint64 // scheduler replays (0 under the perfect hit predictor)
	// CGGateHolds counts ready scheduler entries held back by the
	// coarse-grain in-block issue gate (cgcore only; always 0 for the
	// ungated policies). omitempty keeps the embedded golden corpus —
	// whose bytes feed perf.VersionSalt — unchanged for those policies.
	CGGateHolds uint64 `json:",omitempty"`

	// Memory system.
	Loads            uint64
	Stores           uint64
	StoreForwards    uint64
	MemDepViolations uint64

	// Occupancy integrals (sum over cycles; divide by Cycles for mean).
	ROBOccupancy int64
	IQOccupancy  int64

	// Stall accounting (dispatch-blocked cycles by cause).
	StallROBFull    int64
	StallIQFull     int64
	StallLSQFull    int64
	StallFreeList   int64
	StallFrontEnd   int64 // empty front end (fetch latency, redirects)
	StallSPAddLimit int64
}

// Check asserts the internal-consistency invariants every finished run
// must satisfy, returning the first violation. The bounds are the ones
// the pipelines actually guarantee: per-cause dispatch stalls cannot
// exceed one per cycle, but StallFrontEnd is incremented by both fetch
// and dispatch (up to 2/cycle), and RecoveryStall is charged both in
// bulk at recovery and per blocked dispatch cycle. coretest and the
// bench runner call Check after every simulation.
func (s *Stats) Check(cfg Config) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("uarch: stats inconsistency: "+format, args...)
	}
	if s.Cycles < 0 {
		return fail("negative cycle count %d", s.Cycles)
	}
	if s.Retired > s.FetchedInsts {
		return fail("retired %d > fetched %d", s.Retired, s.FetchedInsts)
	}
	var byClass uint64
	for _, n := range s.RetiredByClass {
		byClass += n
	}
	if byClass != s.Retired {
		return fail("sum(RetiredByClass)=%d != Retired=%d", byClass, s.Retired)
	}
	if s.Mispredicts > s.CondBranches {
		return fail("mispredicts %d > conditional branches %d", s.Mispredicts, s.CondBranches)
	}
	if s.ROBOccupancy > int64(cfg.ROBSize)*s.Cycles {
		return fail("ROB occupancy integral %d > ROBSize(%d) x cycles(%d)",
			s.ROBOccupancy, cfg.ROBSize, s.Cycles)
	}
	if s.IQOccupancy > int64(cfg.SchedulerSize)*s.Cycles {
		return fail("IQ occupancy integral %d > SchedulerSize(%d) x cycles(%d)",
			s.IQOccupancy, cfg.SchedulerSize, s.Cycles)
	}
	// Fixed evaluation order (no map): the first violated bound reported
	// is deterministic across runs, and the check allocates nothing.
	perCycle := [...]struct {
		name string
		n    int64
	}{
		{"StallROBFull", s.StallROBFull},
		{"StallIQFull", s.StallIQFull},
		{"StallLSQFull", s.StallLSQFull},
		{"StallFreeList", s.StallFreeList},
		{"StallSPAddLimit", s.StallSPAddLimit},
	}
	for _, c := range perCycle {
		if c.n < 0 || c.n > s.Cycles {
			return fail("%s=%d outside [0, cycles=%d]", c.name, c.n, s.Cycles)
		}
	}
	if s.StallFrontEnd < 0 || s.StallFrontEnd > 2*s.Cycles {
		return fail("StallFrontEnd=%d outside [0, 2 x cycles=%d]", s.StallFrontEnd, 2*s.Cycles)
	}
	if s.RecoveryStall < 0 || s.RecoveryStall > 2*s.Cycles {
		return fail("RecoveryStall=%d outside [0, 2 x cycles=%d]", s.RecoveryStall, 2*s.Cycles)
	}
	if s.Retired > 0 && s.Cycles == 0 {
		return fail("retired %d instructions in zero cycles", s.Retired)
	}
	// Activity counters. Bounds are the loosest the pipelines guarantee
	// by construction: per-instruction counters cannot exceed a small
	// multiple of the instructions fetched, per-cycle counters cannot
	// exceed the issuing structure's capacity times the cycle count.
	cyc := uint64(s.Cycles)
	if s.TargetMispredict > s.FetchedInsts {
		return fail("targetMispredict %d > fetched %d", s.TargetMispredict, s.FetchedInsts)
	}
	if s.RenameReads > 4*uint64(cfg.FetchWidth)*cyc {
		return fail("renameReads %d > 4 x FetchWidth(%d) x cycles(%d)", s.RenameReads, cfg.FetchWidth, s.Cycles)
	}
	if s.RenameWrites > s.FetchedInsts {
		return fail("renameWrites %d > fetched %d", s.RenameWrites, s.FetchedInsts)
	}
	if s.FreeListOps > 2*s.FetchedInsts {
		return fail("freeListOps %d > 2 x fetched %d", s.FreeListOps, s.FetchedInsts)
	}
	if s.ROBWalkSteps > uint64(cfg.ROBSize)*cyc {
		return fail("robWalkSteps %d > ROBSize(%d) x cycles(%d)", s.ROBWalkSteps, cfg.ROBSize, s.Cycles)
	}
	if s.RPAdditions > 4*s.FetchedInsts {
		return fail("rpAdditions %d > 4 x fetched %d", s.RPAdditions, s.FetchedInsts)
	}
	if s.SPAddExecuted > s.FetchedInsts {
		return fail("spAddExecuted %d > fetched %d", s.SPAddExecuted, s.FetchedInsts)
	}
	if s.IQWakeups > uint64(cfg.SchedulerSize)*cyc {
		return fail("iqWakeups %d > SchedulerSize(%d) x cycles(%d)", s.IQWakeups, cfg.SchedulerSize, s.Cycles)
	}
	if s.IQIssued > uint64(cfg.IssueWidth)*cyc {
		return fail("iqIssued %d > IssueWidth(%d) x cycles(%d)", s.IQIssued, cfg.IssueWidth, s.Cycles)
	}
	if s.CGGateHolds > uint64(cfg.SchedulerSize)*cyc {
		return fail("cgGateHolds %d > SchedulerSize(%d) x cycles(%d)", s.CGGateHolds, cfg.SchedulerSize, s.Cycles)
	}
	if s.Replays > s.IQIssued {
		return fail("replays %d > issued %d", s.Replays, s.IQIssued)
	}
	if s.RegReads > 4*uint64(cfg.SchedulerSize)*cyc {
		return fail("regReads %d > 4 x SchedulerSize(%d) x cycles(%d)", s.RegReads, cfg.SchedulerSize, s.Cycles)
	}
	if s.RegWrites > s.IQIssued+s.SPAddExecuted {
		return fail("regWrites %d > issued %d + spAdds %d", s.RegWrites, s.IQIssued, s.SPAddExecuted)
	}
	if s.Loads+s.Stores > s.IQIssued {
		return fail("loads %d + stores %d > issued %d", s.Loads, s.Stores, s.IQIssued)
	}
	if s.StoreForwards > s.Loads {
		return fail("storeForwards %d > loads %d", s.StoreForwards, s.Loads)
	}
	if s.MemDepViolations > s.Loads {
		return fail("memDepViolations %d > loads %d", s.MemDepViolations, s.Loads)
	}
	return nil
}

// Sub returns the counter-wise difference s − prev, where prev is an
// earlier snapshot of the same accumulating run. The sampled simulator
// uses it to extract a measurement window's contribution after a
// discarded warmup (DESIGN.md §16). A delta is NOT a finished run and
// need not satisfy Check: a window can retire instructions fetched
// before the snapshot, so e.g. Retired > FetchedInsts is legal.
// TestStatsSubCoversAllFields asserts with reflection that every
// numeric field is subtracted, so new counters cannot be silently
// dropped from window deltas.
func (s Stats) Sub(prev Stats) Stats {
	d := s
	d.Cycles -= prev.Cycles
	d.Retired -= prev.Retired
	for i := range d.RetiredByClass {
		d.RetiredByClass[i] -= prev.RetiredByClass[i]
	}
	d.CondBranches -= prev.CondBranches
	d.Mispredicts -= prev.Mispredicts
	d.TargetMispredict -= prev.TargetMispredict
	d.RecoveryStall -= prev.RecoveryStall
	d.FetchedInsts -= prev.FetchedInsts
	d.RenameReads -= prev.RenameReads
	d.RenameWrites -= prev.RenameWrites
	d.FreeListOps -= prev.FreeListOps
	d.ROBWalkSteps -= prev.ROBWalkSteps
	d.RPAdditions -= prev.RPAdditions
	d.SPAddExecuted -= prev.SPAddExecuted
	d.RegReads -= prev.RegReads
	d.RegWrites -= prev.RegWrites
	d.IQWakeups -= prev.IQWakeups
	d.IQIssued -= prev.IQIssued
	d.Replays -= prev.Replays
	d.CGGateHolds -= prev.CGGateHolds
	d.Loads -= prev.Loads
	d.Stores -= prev.Stores
	d.StoreForwards -= prev.StoreForwards
	d.MemDepViolations -= prev.MemDepViolations
	d.ROBOccupancy -= prev.ROBOccupancy
	d.IQOccupancy -= prev.IQOccupancy
	d.StallROBFull -= prev.StallROBFull
	d.StallIQFull -= prev.StallIQFull
	d.StallLSQFull -= prev.StallLSQFull
	d.StallFreeList -= prev.StallFreeList
	d.StallFrontEnd -= prev.StallFrontEnd
	d.StallSPAddLimit -= prev.StallSPAddLimit
	return d
}

// IPC returns retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MPKI returns branch mispredictions per kilo-instruction.
func (s *Stats) MPKI() float64 {
	if s.Retired == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Retired)
}

// String renders a compact multi-line report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d retired=%d IPC=%.3f\n", s.Cycles, s.Retired, s.IPC())
	fmt.Fprintf(&b, "branches=%d mispredicts=%d (%.2f MPKI) targetMiss=%d recoveryStall=%d\n",
		s.CondBranches, s.Mispredicts, s.MPKI(), s.TargetMispredict, s.RecoveryStall)
	fmt.Fprintf(&b, "loads=%d stores=%d fwd=%d memdepViol=%d replays=%d\n",
		s.Loads, s.Stores, s.StoreForwards, s.MemDepViolations, s.Replays)
	fmt.Fprintf(&b, "stalls: rob=%d iq=%d lsq=%d freelist=%d frontend=%d spadd=%d\n",
		s.StallROBFull, s.StallIQFull, s.StallLSQFull, s.StallFreeList, s.StallFrontEnd, s.StallSPAddLimit)
	if s.Cycles > 0 {
		fmt.Fprintf(&b, "occupancy: rob=%.1f iq=%.1f\n",
			float64(s.ROBOccupancy)/float64(s.Cycles), float64(s.IQOccupancy)/float64(s.Cycles))
	}
	fmt.Fprintf(&b, "rename: reads=%d writes=%d freelist=%d robWalk=%d rpAdds=%d spAdds=%d\n",
		s.RenameReads, s.RenameWrites, s.FreeListOps, s.ROBWalkSteps, s.RPAdditions, s.SPAddExecuted)
	fmt.Fprintf(&b, "activity: fetched=%d wakeups=%d issued=%d regReads=%d regWrites=%d\n",
		s.FetchedInsts, s.IQWakeups, s.IQIssued, s.RegReads, s.RegWrites)
	if s.CGGateHolds > 0 {
		fmt.Fprintf(&b, "cgGateHolds=%d\n", s.CGGateHolds)
	}
	fmt.Fprintf(&b, "retiredByClass=%v\n", s.RetiredByClass)
	return b.String()
}
