package uarch

// Retirement describes one instruction leaving the ROB in program order.
// Both cores publish this stream through Options.RetireFn so external
// checkers (internal/fuzzgen's lockstep oracle) can compare a run against
// a reference emulator retirement-by-retirement without reaching into
// core internals.
type Retirement struct {
	Seq uint64 // 0-based retirement index (position in the retire stream)
	PC  uint32

	// HasValue reports whether the instruction produced a register
	// result; Value is the destination register content at retire.
	HasValue bool
	Value    uint32

	// LogReg is the architectural destination for sscore (RISC-V rd);
	// straightcore has no logical registers and always reports -1.
	LogReg int16

	IsStore bool
	MemAddr uint32 // effective address of a load or store (else 0)
}

// RetireFn observes every retirement in program order. A non-nil error
// aborts the run and is returned from Core.Run, which lets a lockstep
// checker stop the simulation at the first diverging instruction.
type RetireFn func(Retirement) error
