package uarch

// Set-associative cache hierarchy with LRU replacement and a simple
// next-line stream prefetcher on the data side (paper §V-A lists a
// "stream prefetcher for data caches").
//
// The timing model is latency-accumulating: an access pays each level's
// hit latency down to the level that hits (or memory), and all levels on
// the path are filled. A limited number of misses overlap (the MSHR
// count); when all miss registers are busy a new miss queues behind the
// earliest one to complete. Prefetch fills bypass the MSHRs (background
// fill bandwidth).

// Cache is one set-associative level.
type Cache struct {
	cfg   CacheConfig //lint:resetless geometry, fixed at construction
	sets  int         //lint:resetless geometry, fixed at construction
	shift uint        //lint:resetless line offset bits, fixed at construction
	tags  [][]uint64  // tags[set][way]; 0 = invalid (tag stored +1)
	lru   [][]uint32  // larger = more recent
	tick  uint32

	Hits   uint64
	Misses uint64
}

// NewCache builds a cache level.
func NewCache(cfg CacheConfig) *Cache {
	line := cfg.LineBytes
	sets := cfg.SizeBytes / (line * cfg.Ways)
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < line {
		shift++
	}
	c := &Cache{cfg: cfg, sets: sets, shift: shift}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint32, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.lru[i] = make([]uint32, cfg.Ways)
	}
	return c
}

func (c *Cache) index(addr uint32) (set int, tag uint64) {
	line := uint64(addr) >> c.shift
	return int(line % uint64(c.sets)), line + 1
}

// Lookup probes the cache; on hit it refreshes LRU.
func (c *Cache) Lookup(addr uint32) bool {
	set, tag := c.index(addr)
	for w, t := range c.tags[set] {
		if t == tag {
			c.tick++
			c.lru[set][w] = c.tick
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Fill installs the line, evicting LRU.
func (c *Cache) Fill(addr uint32) {
	set, tag := c.index(addr)
	victim := 0
	for w, t := range c.tags[set] {
		if t == tag {
			return // already present
		}
		if c.lru[set][w] < c.lru[set][victim] {
			victim = w
		}
	}
	c.tick++
	c.tags[set][victim] = tag
	c.lru[set][victim] = c.tick
}

// Probe checks presence without updating LRU or stats.
func (c *Cache) Probe(addr uint32) bool {
	set, tag := c.index(addr)
	for _, t := range c.tags[set] {
		if t == tag {
			return true
		}
	}
	return false
}

// HitLatency returns the level's hit latency.
func (c *Cache) HitLatency() int { return c.cfg.HitLatency }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }

// Hierarchy is the full memory system: L1I + L1D front, shared L2
// (and optional L3), and main memory latency.
//
//lint:hotpath
type Hierarchy struct {
	L1I    *Cache
	L1D    *Cache
	L2     *Cache
	L3     *Cache // may be nil
	memLat int    //lint:resetless latency configuration, fixed at construction

	prefetch *streamPrefetcher
	// mshr holds the completion cycle of each in-flight data miss.
	mshr []int64

	// DemandFetches counts instruction-side accesses; DemandData counts
	// data-side (for power accounting).
	DemandFetches uint64
	DemandData    uint64
	Prefetches    uint64
}

// NewHierarchy builds the memory system from a model config.
func NewHierarchy(cfg Config) *Hierarchy {
	h := &Hierarchy{
		L1I:    NewCache(cfg.L1I),
		L1D:    NewCache(cfg.L1D),
		L2:     NewCache(cfg.L2),
		memLat: cfg.MemLatency,
	}
	if cfg.L3 != nil {
		h.L3 = NewCache(*cfg.L3)
	}
	if !cfg.NoPrefetch {
		h.prefetch = newStreamPrefetcher(cfg.L1D.LineBytes)
	}
	n := cfg.MSHRs
	if n == 0 {
		n = 8
	}
	h.mshr = make([]int64, n)
	return h
}

// mshrDelay allocates a miss register at time now, returning the queuing
// delay before the miss can start.
func (h *Hierarchy) mshrDelay(now int64) (slot int, delay int64) {
	best := 0
	for i, busy := range h.mshr {
		if busy <= now {
			return i, 0
		}
		if busy < h.mshr[best] {
			best = i
		}
	}
	return best, h.mshr[best] - now
}

// beyondL1 accumulates the latency of servicing a miss below L1 and fills
// the levels on the path.
func (h *Hierarchy) beyondL1(addr uint32) int {
	lat := h.L2.HitLatency()
	if h.L2.Lookup(addr) {
		return lat
	}
	if h.L3 != nil {
		lat += h.L3.HitLatency()
		if h.L3.Lookup(addr) {
			h.L2.Fill(addr)
			return lat
		}
		h.L3.Fill(addr)
	}
	lat += h.memLat
	h.L2.Fill(addr)
	return lat
}

// AccessInst returns the latency of an instruction fetch at addr
// starting at cycle now.
func (h *Hierarchy) AccessInst(now int64, addr uint32) int {
	h.DemandFetches++
	lat := h.L1I.HitLatency()
	if h.L1I.Lookup(addr) {
		return lat
	}
	slot, delay := h.mshrDelay(now)
	lat += int(delay) + h.beyondL1(addr)
	h.mshr[slot] = now + int64(lat)
	h.L1I.Fill(addr)
	return lat
}

// AccessData returns the latency of a data access at addr (load or
// store-at-commit fill) starting at cycle now. The stream prefetcher
// trains on L1D misses and pulls subsequent lines into L1D.
func (h *Hierarchy) AccessData(now int64, addr uint32) int {
	h.DemandData++
	lat := h.L1D.HitLatency()
	if h.L1D.Lookup(addr) {
		return lat
	}
	slot, delay := h.mshrDelay(now)
	lat += int(delay) + h.beyondL1(addr)
	h.mshr[slot] = now + int64(lat)
	h.L1D.Fill(addr)
	if h.prefetch == nil {
		return lat
	}
	pf, n := h.prefetch.onMiss(addr)
	for i := 0; i < n; i++ {
		h.Prefetches++
		// Prefetches are charged no demand latency: they fill L1D (and
		// L2 on the way) in the background.
		if !h.L1D.Probe(pf[i]) {
			h.L2.Fill(pf[i])
			h.L1D.Fill(pf[i])
		}
	}
	return lat
}

// WouldHitL1D reports whether a data access would hit L1D right now,
// without changing any state — the cores' cache-hit predictor uses this
// as a "perfect" hit predictor input and the schedulers replay on
// mispredicted hits.
func (h *Hierarchy) WouldHitL1D(addr uint32) bool { return h.L1D.Probe(addr) }

// streamPrefetcher detects up to 8 concurrent ascending streams and
// prefetches the next two lines on a detected stream.
type streamPrefetcher struct {
	lineBytes uint32 //lint:resetless geometry, fixed at construction
	last      [8]uint32
	valid     [8]bool
	next      int
}

func newStreamPrefetcher(lineBytes int) *streamPrefetcher {
	return &streamPrefetcher{lineBytes: uint32(lineBytes)}
}

// onMiss returns the lines to prefetch in a fixed-size array (no slice is
// allocated on the per-miss path).
func (s *streamPrefetcher) onMiss(addr uint32) (pf [2]uint32, n int) {
	line := addr &^ (s.lineBytes - 1)
	for i := range s.last {
		if s.valid[i] && line == s.last[i]+s.lineBytes {
			// Ascending stream confirmed: prefetch the next two lines.
			s.last[i] = line
			return [2]uint32{line + s.lineBytes, line + 2*s.lineBytes}, 2
		}
	}
	s.last[s.next] = line
	s.valid[s.next] = true
	s.next = (s.next + 1) % len(s.last)
	return pf, 0
}
