package uarch

// Ring is a preallocated circular buffer used for the simulation kernel's
// FIFO-ish pipeline structures (ROB, fetch queue, free list). Unlike an
// append-and-reslice slice, the steady-state operations never allocate:
// PushBack/PopFront move head and length over a fixed power-of-two backing
// array, and element slots are stable while an element is resident (the
// buffer only grows when the occupancy exceeds every previous high-water
// mark, which the cores' structural size checks prevent after warmup).
//
//lint:hotpath
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// NewRing builds a ring with at least the given capacity.
func NewRing[T any](capacity int) *Ring[T] {
	r := &Ring[T]{}
	r.grow(capacity)
	return r
}

func (r *Ring[T]) grow(minCap int) {
	c := 8
	for c < minCap {
		c <<= 1
	}
	buf := make([]T, c) //lint:alloc amortized ring growth; rings are pre-sized and grow only past the high-water mark
	for i := 0; i < r.n; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

// Len returns the number of elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current backing capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow(r.n*2 + 1)
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PushFront prepends v at the head.
func (r *Ring[T]) PushFront(v T) {
	if r.n == len(r.buf) {
		r.grow(r.n*2 + 1)
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

// PopFront removes and returns the head element. It panics on an empty
// ring (the cores guard every pop with an occupancy check).
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("uarch: PopFront on empty ring")
	}
	v := r.buf[r.head]
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the element i positions from the head (0 = head).
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("uarch: ring index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// Front returns the head element without removing it.
func (r *Ring[T]) Front() T { return r.At(0) }

// Truncate drops elements from the tail until n remain.
func (r *Ring[T]) Truncate(n int) {
	if n < 0 || n > r.n {
		panic("uarch: ring truncate out of range")
	}
	r.n = n
}

// Clear removes all elements (slots are not zeroed; residents of a
// cleared ring must not own pooled resources).
func (r *Ring[T]) Clear() {
	r.head = 0
	r.n = 0
}
