package uarch

import "fmt"

// HorizonNever is the "no scheduled event" sentinel of the event horizon
// (the same far-future value the cores use for pending scoreboard
// entries).
const HorizonNever = int64(1) << 62

// EventHorizon accumulates the earliest future cycle at which a
// quiescent pipeline can next change state. The cores build one per
// skip attempt from every time-driven boundary they know about — FU
// completion times, scheduler ready times, the memory-response cycle of
// an outstanding miss, a fetch redirect or rename-unblock cycle, the
// front-end pipe delay of the queue head — and then advance the clock
// directly to Next (or a caller-imposed budget, whichever is sooner).
//
// The zero value is not ready to use; call Reset (or start from
// NewEventHorizon) so Next begins at HorizonNever.
//
//lint:hotpath
type EventHorizon struct {
	next int64
}

// NewEventHorizon returns an empty horizon (Next == HorizonNever).
//
//lint:hotpath
func NewEventHorizon() EventHorizon { return EventHorizon{next: HorizonNever} }

// Reset empties the horizon.
func (h *EventHorizon) Reset() { h.next = HorizonNever }

// Observe folds an event time into the horizon.
func (h *EventHorizon) Observe(t int64) {
	if t < h.next {
		h.next = t
	}
}

// ObserveAfter folds t into the horizon only if it is strictly in the
// future of now (past thresholds are spent and schedule nothing).
func (h *EventHorizon) ObserveAfter(t, now int64) {
	if t > now && t < h.next {
		h.next = t
	}
}

// Next returns the earliest observed event time, HorizonNever if none.
func (h *EventHorizon) Next() int64 { return h.next }

// SkipWidth returns how many whole cycles may be skipped from now: the
// distance to the next event, clamped to limit, and 0 when no event is
// scheduled (HorizonNever means the pipeline is waiting on something
// non-temporal — e.g. a true deadlock — and must keep single-stepping so
// the cores' progress checks still fire).
func (h *EventHorizon) SkipWidth(now, limit int64) int64 {
	if h.next == HorizonNever || h.next <= now {
		return 0
	}
	k := h.next - now
	if k > limit {
		k = limit
	}
	if k < 0 {
		k = 0
	}
	return k
}

// SkipStats reports idle-skip telemetry. It deliberately lives outside
// Stats: the skip fast path must leave Stats bit-identical to per-cycle
// stepping (the golden harness diffs the whole struct), so telemetry
// travels through core accessors instead of new counters.
//
//lint:stats
type SkipStats struct {
	SkippedCycles int64 // cycles advanced in bulk
	Events        int64 // number of skip windows taken
}

// String renders the telemetry in one line.
func (s *SkipStats) String() string {
	return fmt.Sprintf("skipped=%d cycles across %d windows", s.SkippedCycles, s.Events)
}

// Check asserts the telemetry's internal consistency: a window skips at
// least one cycle, so there can never be more windows than skipped
// cycles, and neither count can go negative.
func (s *SkipStats) Check() error {
	if s.SkippedCycles < 0 || s.Events < 0 {
		return fmt.Errorf("uarch: skip stats inconsistency: negative telemetry (skipped=%d events=%d)", s.SkippedCycles, s.Events)
	}
	if s.Events > s.SkippedCycles {
		return fmt.Errorf("uarch: skip stats inconsistency: %d windows but only %d skipped cycles", s.Events, s.SkippedCycles)
	}
	return nil
}
