// Package uarch provides the shared microarchitecture components of the
// two cycle-level simulators: the evaluated-model configurations (paper
// Table I), branch predictors (gshare and TAGE), BTB and return-address
// stack, the cache hierarchy with a stream prefetcher, the load/store
// queue with forwarding and disambiguation, a memory-dependence
// predictor, and the statistics the experiments report.
//
// Mirroring the paper ("both simulators can share common codes for the
// most part", §V-A), everything except the front-end register-management
// and the retire/recovery mechanism lives here and is used unchanged by
// both the STRAIGHT core and the superscalar (SS) core.
//
// # Pipeline model
//
// Both cores step the same five-phase cycle loop, back to front so
// same-cycle hand-offs behave like a real pipeline with forwarding:
//
//	commit -> completeExecution -> issue -> dispatch -> fetch -> recovery
//
// An instruction's life is: fetched into the front-end queue (where it
// waits out FrontEndLatency decode stages), dispatched into the ROB and
// scheduler (this is where the cores differ — STRAIGHT runs RP-relative
// operand determination, SS renames through the RMT and free list),
// issued to a functional unit when its sources are ready, completed
// (result written to the physical register file), and finally committed
// in order. Mispredictions and memory-order violations squash the wrong
// path at end of cycle via each core's recovery mechanism.
//
// # Statistics and observability
//
// Stats is filled identically by both cores, so figures compare the
// counters directly; Stats.Check asserts the cross-counter invariants
// after every run driven by coretest or internal/bench. The same
// lifecycle edges that bump these counters carry the optional
// internal/ptrace hooks (see that package for the event taxonomy), which
// is what makes the traced stall accounting reconcile exactly with the
// end-of-run Stats.
package uarch
