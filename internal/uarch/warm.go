package uarch

// Functional warming for sampled simulation (DESIGN.md §16). A sampled
// window restarts a detailed core from an *architectural* checkpoint:
// registers and memory are exact, but caches, the direction predictor
// and the BTB would be cold, and the refill penalty dwarfs a short
// sample window (hundreds of percent of cycle inflation on the matrix
// workloads). WarmState is the SMARTS answer: the fast-forward pass
// keeps replica cache/predictor structures continuously warm at
// functional speed, snapshots them alongside each checkpoint, and the
// core adopts the replica state on Restart — leaving the short detailed
// warmup only the pipeline-local state (ROB, queues, RAS) to fill.
//
// Warm state is deliberately *not* part of the checkpoint's canonical
// serialization: for a fixed sampler version it is a deterministic
// function of the architectural position and the model configuration,
// both of which the window's content address already covers.

// WarmState is the microarchitectural replica the fast-forward pass
// trains: the cache hierarchy, the direction predictor (gshare models
// only), the BTB, and the return-address stack.
type WarmState struct {
	Hier *Hierarchy
	// Dir is nil when the model's predictor is not gshare (the TAGE
	// variant keeps speculative folded histories that have no cheap
	// functional replica; those models warm in the detailed phase).
	Dir *Gshare
	BTB *BTB
	// RAS mirrors the committed call stack: the cores' RASRecover repairs
	// the speculative RAS to exactly this state after every control
	// misprediction, so the architectural call/return trace is the
	// correct steady state to seed it with. Without it every restart
	// begins with an empty stack and each return that unwinds past the
	// restart point mispredicts — ruinous for call-heavy workloads.
	RAS *RAS
}

// NewWarmState builds the replica structures for a model config.
func NewWarmState(cfg Config) *WarmState {
	w := &WarmState{
		Hier: NewHierarchy(cfg),
		BTB:  NewBTB(cfg.BTBEntries),
		RAS:  NewRAS(cfg.RASEntries),
	}
	if cfg.Predictor != PredTAGE {
		w.Dir = NewGshare(cfg.GshareHistBits, cfg.GshareEntries)
	}
	return w
}

// Clone snapshots the warm state (taken at every checkpoint: the
// original keeps training while windows restart from the snapshot).
func (w *WarmState) Clone() *WarmState {
	cp := &WarmState{
		Hier: NewHierarchy(w.Hier.cfg()),
		BTB:  NewBTB(len(w.BTB.entries)),
		RAS:  NewRAS(w.RAS.size),
	}
	cp.Hier.CopyStateFrom(w.Hier)
	cp.BTB.CopyFrom(w.BTB)
	cp.RAS.CopyFrom(w.RAS)
	if w.Dir != nil {
		cp.Dir = NewGshare(int(w.Dir.histBits), len(w.Dir.table))
		cp.Dir.CopyFrom(w.Dir)
	}
	return cp
}

// Inst warms the instruction side for a retired instruction at pc.
//
//lint:hotpath
func (w *WarmState) Inst(pc uint32) { w.Hier.WarmInst(pc) }

// Data warms the data side for a load or store at addr.
//
//lint:hotpath
func (w *WarmState) Data(addr uint32) { w.Hier.WarmData(addr) }

// Branch trains the direction predictor with a resolved conditional
// branch. The BTB is deliberately untouched: the engine inserts BTB
// entries only for the ops its policy's UpdatesBTB selects (indirect
// jumps), and the replica must evict the direct-mapped BTB exactly as
// the detailed core would.
//
//lint:hotpath
func (w *WarmState) Branch(pc uint32, taken bool) {
	if w.Dir != nil {
		w.Dir.Train(pc, taken)
	}
}

// Indirect records an indirect control transfer in the BTB — call this
// for exactly the ops the policy's UpdatesBTB selects (JALR/JR on
// STRAIGHT, JALR on RISC-V).
//
//lint:hotpath
func (w *WarmState) Indirect(pc uint32, target uint32) { w.BTB.Insert(pc, target) }

// Call pushes a return address at a committed call instruction.
//
//lint:hotpath
func (w *WarmState) Call(ret uint32) { w.RAS.Push(ret) }

// Return pops the stack at a committed return instruction.
//
//lint:hotpath
func (w *WarmState) Return() { w.RAS.Pop() }

// ---- warm accessors on the replicated structures ----

// cfgOf recovers the construction config of a hierarchy (for Clone).
func (h *Hierarchy) cfg() Config {
	c := Config{
		L1I:        h.L1I.cfg,
		L1D:        h.L1D.cfg,
		L2:         h.L2.cfg,
		MemLatency: h.memLat,
		MSHRs:      len(h.mshr),
		NoPrefetch: h.prefetch == nil,
	}
	if h.L3 != nil {
		l3 := h.L3.cfg
		c.L3 = &l3
	}
	return c
}

// WarmInst touches the instruction path without timing: a miss fills
// every level on the path, exactly as a demand fetch would.
//
//lint:hotpath
func (h *Hierarchy) WarmInst(addr uint32) {
	if h.L1I.Lookup(addr) {
		return
	}
	h.beyondL1(addr)
	h.L1I.Fill(addr)
}

// WarmData touches the data path without timing, including the stream
// prefetcher (its fills shape which lines are resident).
//
//lint:hotpath
func (h *Hierarchy) WarmData(addr uint32) {
	if h.L1D.Lookup(addr) {
		return
	}
	h.beyondL1(addr)
	h.L1D.Fill(addr)
	if h.prefetch == nil {
		return
	}
	pf, n := h.prefetch.onMiss(addr)
	for i := 0; i < n; i++ {
		if !h.L1D.Probe(pf[i]) {
			h.L2.Fill(pf[i])
			h.L1D.Fill(pf[i])
		}
	}
}

// CopyStateFrom adopts src's line placement (tags, LRU) level by level.
// Stat counters, MSHR timing, and prefetcher stream state stay local:
// they are either per-run statistics or transient timing state that the
// detailed warmup refills. Geometries must match (same Config).
func (h *Hierarchy) CopyStateFrom(src *Hierarchy) {
	h.L1I.CopyFrom(src.L1I)
	h.L1D.CopyFrom(src.L1D)
	h.L2.CopyFrom(src.L2)
	if h.L3 != nil && src.L3 != nil {
		h.L3.CopyFrom(src.L3)
	}
}

// CopyFrom adopts src's tags and LRU state. Geometries must match.
func (c *Cache) CopyFrom(src *Cache) {
	if c.sets != src.sets || len(c.tags[0]) != len(src.tags[0]) {
		panic("uarch: Cache.CopyFrom geometry mismatch")
	}
	for s := range c.tags {
		copy(c.tags[s], src.tags[s])
		copy(c.lru[s], src.lru[s])
	}
	c.tick = src.tick
}

// Train performs a non-speculative gshare update: table training plus a
// history shift with the actual outcome — the steady state a detailed
// front end converges to, since misprediction recovery repairs its
// speculative history to the resolved outcome.
//
//lint:hotpath
func (g *Gshare) Train(pc uint32, taken bool) {
	g.Update(pc, taken, g.history)
	g.history = (g.history<<1 | b2u(taken)) & (1<<g.histBits - 1)
}

// CopyFrom adopts src's counter table and global history. Geometries
// must match.
func (g *Gshare) CopyFrom(src *Gshare) {
	if len(g.table) != len(src.table) || g.histBits != src.histBits {
		panic("uarch: Gshare.CopyFrom geometry mismatch")
	}
	copy(g.table, src.table)
	g.history = src.history
}

// CopyFrom adopts src's target entries. Geometries must match.
func (b *BTB) CopyFrom(src *BTB) {
	if len(b.entries) != len(src.entries) {
		panic("uarch: BTB.CopyFrom geometry mismatch")
	}
	copy(b.entries, src.entries)
}

// CopyFrom adopts src's stack contents. Capacities must match.
func (r *RAS) CopyFrom(src *RAS) {
	if r.size != src.size {
		panic("uarch: RAS.CopyFrom capacity mismatch")
	}
	r.stack = append(r.stack[:0], src.stack...)
}
