package uarch

// LSQ models the load and store queues: allocation at dispatch in program
// order, store-to-load forwarding, memory disambiguation with violation
// detection, and squash on recovery (paper §V-A: "a load-store queue
// (LSQ) for memory disambiguation").
//
// Both queues are preallocated rings of entries: Allocate reuses a slot
// instead of heap-allocating, and entry pointers stay valid while the
// entry is resident (slots never move; they are recycled only after
// Retire or SquashYounger drops them). Entries are Seq-ordered by
// construction — dispatch allocates in program order and squash discards
// a tail — which the scan helpers exploit.
//
//lint:hotpath
type LSQ struct {
	loads  lsqRing
	stores lsqRing
}

// LSQEntry tracks one in-flight memory operation.
//
//lint:hotpath
type LSQEntry struct {
	U         *UOp
	Addr      uint32
	Size      uint8
	AddrReady bool
	Data      uint32
	DataReady bool
	Executed  bool   // loads: value obtained
	fwdSeq    uint64 // loads: Seq of the store that forwarded the value
}

// lsqRing is a fixed-capacity circular buffer of LSQEntry slots. The
// backing array is sized to the configured queue capacity up front, so
// steady-state allocation and retirement touch no allocator.
type lsqRing struct {
	buf  []LSQEntry
	head int
	n    int
	cap  int
}

func newLSQRing(capacity int) lsqRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return lsqRing{buf: make([]LSQEntry, c), cap: capacity}
}

func (r *lsqRing) at(i int) *LSQEntry { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *lsqRing) push(u *UOp) *LSQEntry {
	e := &r.buf[(r.head+r.n)&(len(r.buf)-1)]
	*e = LSQEntry{U: u}
	r.n++
	return e
}

// NewLSQ builds the queues.
func NewLSQ(lqCap, sqCap int) *LSQ {
	return &LSQ{loads: newLSQRing(lqCap), stores: newLSQRing(sqCap)}
}

// CanAllocate reports whether a µop of the given kind fits.
func (q *LSQ) CanAllocate(isLoad bool) bool {
	if isLoad {
		return q.loads.n < q.loads.cap
	}
	return q.stores.n < q.stores.cap
}

// Allocate inserts a µop at dispatch (program order) and returns its
// entry. The entry pointer is valid until the µop retires or is
// squashed.
func (q *LSQ) Allocate(u *UOp) *LSQEntry {
	if u.IsLoad {
		return q.loads.push(u)
	}
	return q.stores.push(u)
}

// Occupancy returns current load/store queue occupancy.
func (q *LSQ) Occupancy() (int, int) { return q.loads.n, q.stores.n }

func overlap(a1 uint32, s1 uint8, a2 uint32, s2 uint8) bool {
	return a1 < a2+uint32(s2) && a2 < a1+uint32(s1)
}

// LoadResult describes the disambiguation outcome for a load.
type LoadResult int

const (
	// LoadFromMemory: no older conflicting store; read memory.
	LoadFromMemory LoadResult = iota
	// LoadForwarded: value fully supplied by an older store.
	LoadForwarded
	// LoadMustWait: an older store's address or data is unknown, or the
	// overlap is partial; retry later.
	LoadMustWait
)

// LookupLoad checks older stores for the load entry. On LoadForwarded the
// forwarded value (already size-extracted, unextended) is returned.
// unknownOK selects speculation: when true, unknown older store addresses
// are ignored (the memory-dependence predictor said "speculate").
func (q *LSQ) LookupLoad(le *LSQEntry, unknownOK bool) (LoadResult, uint32) {
	var match *LSQEntry
	for i := 0; i < q.stores.n; i++ {
		se := q.stores.at(i)
		if se.U.Seq > le.U.Seq {
			break
		}
		if !se.AddrReady {
			if !unknownOK {
				return LoadMustWait, 0
			}
			continue
		}
		if overlap(se.Addr, se.Size, le.Addr, le.Size) {
			match = se // youngest older overlapping store wins
		}
	}
	if match == nil {
		return LoadFromMemory, 0
	}
	if !match.DataReady {
		return LoadMustWait, 0
	}
	// Forward only on containment; partial overlap waits for commit.
	if match.Addr <= le.Addr && match.Addr+uint32(match.Size) >= le.Addr+uint32(le.Size) {
		shift := (le.Addr - match.Addr) * 8
		mask := uint32(0xFFFFFFFF)
		if le.Size < 4 {
			mask = 1<<(8*uint32(le.Size)) - 1
		}
		return LoadForwarded, (match.Data >> shift) & mask
	}
	return LoadMustWait, 0
}

// OldestViolation returns the oldest executed younger load that overlaps
// a store whose address just became known — a memory-dependence violation
// requiring a flush — or nil if there is none. The load queue is
// Seq-ordered, so the first match in a head-to-tail scan is the oldest;
// no slice is built.
func (q *LSQ) OldestViolation(se *LSQEntry) *LSQEntry {
	for i := 0; i < q.loads.n; i++ {
		le := q.loads.at(i)
		if le.U.Seq > se.U.Seq && le.Executed &&
			overlap(se.Addr, se.Size, le.Addr, le.Size) && !le.ForwardedFrom(se) {
			return le
		}
	}
	return nil
}

// forwardedSeq records which store supplied a forwarded load, so a
// just-resolved store does not flag the load it itself fed.
func (e *LSQEntry) ForwardedFrom(se *LSQEntry) bool {
	return e.fwdSeq != 0 && e.fwdSeq == se.U.Seq
}

// MarkForwarded records the supplying store.
func (e *LSQEntry) MarkForwarded(storeSeq uint64) { e.fwdSeq = storeSeq }

// SquashYounger drops entries with Seq > seq (recovery). Both queues are
// Seq-ordered, so this is a tail truncation.
func (q *LSQ) SquashYounger(seq uint64) {
	q.loads.truncateYounger(seq)
	q.stores.truncateYounger(seq)
}

func (r *lsqRing) truncateYounger(seq uint64) {
	for r.n > 0 && r.at(r.n-1).U.Seq > seq {
		r.n--
	}
}

// Retire removes the µop's entry from the head of its queue.
func (q *LSQ) Retire(u *UOp) {
	r := &q.stores
	if u.IsLoad {
		r = &q.loads
	}
	if r.n > 0 && r.at(0).U == u {
		r.head = (r.head + 1) & (len(r.buf) - 1)
		r.n--
	}
}

// OlderStoresResolved reports whether all stores older than seq have
// known addresses (used by conservative loads).
func (q *LSQ) OlderStoresResolved(seq uint64) bool {
	for i := 0; i < q.stores.n; i++ {
		se := q.stores.at(i)
		if se.U.Seq >= seq {
			break
		}
		if !se.AddrReady {
			return false
		}
	}
	return true
}
