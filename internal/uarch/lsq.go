package uarch

// LSQ models the load and store queues: allocation at dispatch in program
// order, store-to-load forwarding, memory disambiguation with violation
// detection, and squash on recovery (paper §V-A: "a load-store queue
// (LSQ) for memory disambiguation").
type LSQ struct {
	lqCap, sqCap int
	loads        []*LSQEntry
	stores       []*LSQEntry
}

// LSQEntry tracks one in-flight memory operation.
type LSQEntry struct {
	U         *UOp
	Addr      uint32
	Size      uint8
	AddrReady bool
	Data      uint32
	DataReady bool
	Executed  bool   // loads: value obtained
	fwdSeq    uint64 // loads: Seq of the store that forwarded the value
}

// NewLSQ builds the queues.
func NewLSQ(lqCap, sqCap int) *LSQ {
	return &LSQ{lqCap: lqCap, sqCap: sqCap}
}

// CanAllocate reports whether a µop of the given kind fits.
func (q *LSQ) CanAllocate(isLoad bool) bool {
	if isLoad {
		return len(q.loads) < q.lqCap
	}
	return len(q.stores) < q.sqCap
}

// Allocate inserts a µop at dispatch (program order) and returns its
// entry.
func (q *LSQ) Allocate(u *UOp) *LSQEntry {
	e := &LSQEntry{U: u}
	if u.IsLoad {
		q.loads = append(q.loads, e)
	} else {
		q.stores = append(q.stores, e)
	}
	return e
}

// Occupancy returns current load/store queue occupancy.
func (q *LSQ) Occupancy() (int, int) { return len(q.loads), len(q.stores) }

func overlap(a1 uint32, s1 uint8, a2 uint32, s2 uint8) bool {
	return a1 < a2+uint32(s2) && a2 < a1+uint32(s1)
}

// LoadResult describes the disambiguation outcome for a load.
type LoadResult int

const (
	// LoadFromMemory: no older conflicting store; read memory.
	LoadFromMemory LoadResult = iota
	// LoadForwarded: value fully supplied by an older store.
	LoadForwarded
	// LoadMustWait: an older store's address or data is unknown, or the
	// overlap is partial; retry later.
	LoadMustWait
)

// LookupLoad checks older stores for the load entry. On LoadForwarded the
// forwarded value (already size-extracted, unextended) is returned.
// unknownOK selects speculation: when true, unknown older store addresses
// are ignored (the memory-dependence predictor said "speculate").
func (q *LSQ) LookupLoad(le *LSQEntry, unknownOK bool) (LoadResult, uint32) {
	var match *LSQEntry
	for _, se := range q.stores {
		if se.U.Seq > le.U.Seq {
			break
		}
		if !se.AddrReady {
			if !unknownOK {
				return LoadMustWait, 0
			}
			continue
		}
		if overlap(se.Addr, se.Size, le.Addr, le.Size) {
			match = se // youngest older overlapping store wins
		}
	}
	if match == nil {
		return LoadFromMemory, 0
	}
	if !match.DataReady {
		return LoadMustWait, 0
	}
	// Forward only on containment; partial overlap waits for commit.
	if match.Addr <= le.Addr && match.Addr+uint32(match.Size) >= le.Addr+uint32(le.Size) {
		shift := (le.Addr - match.Addr) * 8
		mask := uint32(0xFFFFFFFF)
		if le.Size < 4 {
			mask = 1<<(8*uint32(le.Size)) - 1
		}
		return LoadForwarded, (match.Data >> shift) & mask
	}
	return LoadMustWait, 0
}

// StoreViolations returns executed younger loads that overlap a store
// whose address just became known — each is a memory-dependence
// violation requiring a flush.
func (q *LSQ) StoreViolations(se *LSQEntry) []*LSQEntry {
	var out []*LSQEntry
	for _, le := range q.loads {
		if le.U.Seq > se.U.Seq && le.Executed &&
			overlap(se.Addr, se.Size, le.Addr, le.Size) && !le.ForwardedFrom(se) {
			out = append(out, le)
		}
	}
	return out
}

// forwardedSeq records which store supplied a forwarded load, so a
// just-resolved store does not flag the load it itself fed.
func (e *LSQEntry) ForwardedFrom(se *LSQEntry) bool {
	return e.fwdSeq != 0 && e.fwdSeq == se.U.Seq
}

// MarkForwarded records the supplying store.
func (e *LSQEntry) MarkForwarded(storeSeq uint64) { e.fwdSeq = storeSeq }

// SquashYounger drops entries with Seq > seq (recovery).
func (q *LSQ) SquashYounger(seq uint64) {
	q.loads = filterLSQ(q.loads, seq)
	q.stores = filterLSQ(q.stores, seq)
}

func filterLSQ(s []*LSQEntry, seq uint64) []*LSQEntry {
	out := s[:0]
	for _, e := range s {
		if e.U.Seq <= seq {
			out = append(out, e)
		}
	}
	return out
}

// Retire removes the µop's entry from the head of its queue.
func (q *LSQ) Retire(u *UOp) {
	if u.IsLoad {
		if len(q.loads) > 0 && q.loads[0].U == u {
			q.loads = q.loads[1:]
		}
		return
	}
	if len(q.stores) > 0 && q.stores[0].U == u {
		q.stores = q.stores[1:]
	}
}

// OldestStoreSeqBefore returns whether all older stores than seq have
// known addresses (used by conservative loads).
func (q *LSQ) OlderStoresResolved(seq uint64) bool {
	for _, se := range q.stores {
		if se.U.Seq >= seq {
			break
		}
		if !se.AddrReady {
			return false
		}
	}
	return true
}
