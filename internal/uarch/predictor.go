package uarch

// Branch prediction machinery: a direction predictor (gshare by default,
// TAGE for Fig 14), a branch target buffer for taken targets and indirect
// jumps, and a return address stack. Both cores instantiate one
// Frontend-side predictor and update it at branch resolution.

// DirPredictor predicts conditional branch directions.
//
//lint:hotpath
type DirPredictor interface {
	// Predict returns the predicted direction and an opaque checkpoint
	// the caller passes back to Update (predictors are speculative-
	// history machines; the checkpoint lets Update repair state).
	Predict(pc uint32) (taken bool, meta uint64)
	// Update trains the predictor with the actual outcome.
	Update(pc uint32, taken bool, meta uint64)
	// Recover rewinds speculative history to the checkpoint of a
	// mispredicted branch (called before refetch).
	Recover(meta uint64, taken bool)
	// Reset returns the predictor to its freshly-constructed state (the
	// batched-run reuse contract; see reset.go).
	Reset()
	// Name identifies the predictor in statistics.
	Name() string
}

// ---- gshare ----

// Gshare is the evaluation's default predictor: global history XOR PC
// indexing a table of 2-bit counters (Table I: 10-bit history, 32K
// entries).
type Gshare struct {
	histBits uint   //lint:resetless geometry, fixed at construction
	history  uint64 // speculative global history
	table    []uint8
	mask     uint32 //lint:resetless geometry, fixed at construction
}

// NewGshare builds a gshare predictor.
func NewGshare(histBits, entries int) *Gshare {
	g := &Gshare{
		histBits: uint(histBits),
		table:    make([]uint8, entries),
		mask:     uint32(entries - 1),
	}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

func (g *Gshare) index(pc uint32, hist uint64) uint32 {
	return (uint32(hist) ^ (pc >> 2)) & g.mask
}

// Predict implements DirPredictor.
func (g *Gshare) Predict(pc uint32) (bool, uint64) {
	hist := g.history
	taken := g.table[g.index(pc, hist)] >= 2
	// Speculatively shift predicted outcome into the history.
	g.history = (hist<<1 | b2u(taken)) & (1<<g.histBits - 1)
	return taken, hist
}

// Update implements DirPredictor.
func (g *Gshare) Update(pc uint32, taken bool, meta uint64) {
	idx := g.index(pc, meta)
	c := g.table[idx]
	if taken && c < 3 {
		g.table[idx] = c + 1
	}
	if !taken && c > 0 {
		g.table[idx] = c - 1
	}
}

// Recover implements DirPredictor: rebuild history as if the branch
// resolved with the actual outcome.
func (g *Gshare) Recover(meta uint64, taken bool) {
	g.history = (meta<<1 | b2u(taken)) & (1<<g.histBits - 1)
}

// Name implements DirPredictor.
func (g *Gshare) Name() string { return "gshare" }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ---- Oracle ----

// Oracle predicts perfectly by asking the caller for the outcome; the
// cores wire OutcomeFn to their in-order golden model.
type Oracle struct {
	OutcomeFn func(pc uint32) bool //lint:resetless wiring, installed by the core that owns the oracle
}

// Predict implements DirPredictor.
func (o *Oracle) Predict(pc uint32) (bool, uint64) {
	if o.OutcomeFn == nil {
		return false, 0
	}
	return o.OutcomeFn(pc), 0
}

// Update implements DirPredictor.
func (o *Oracle) Update(uint32, bool, uint64) {}

// Recover implements DirPredictor.
func (o *Oracle) Recover(uint64, bool) {}

// Name implements DirPredictor.
func (o *Oracle) Name() string { return "oracle" }

// ---- BTB ----

// BTB caches targets of taken branches and jumps (direct-mapped with
// tags).
//
//lint:hotpath
type BTB struct {
	entries []btbEntry
	mask    uint32 //lint:resetless geometry, fixed at construction
	Hits    uint64
	Misses  uint64
}

type btbEntry struct {
	tag    uint32
	target uint32
	valid  bool
}

// NewBTB builds a BTB with a power-of-two entry count.
func NewBTB(entries int) *BTB {
	return &BTB{entries: make([]btbEntry, entries), mask: uint32(entries - 1)}
}

// Lookup returns the cached target for pc.
func (b *BTB) Lookup(pc uint32) (uint32, bool) {
	e := &b.entries[(pc>>2)&b.mask]
	if e.valid && e.tag == pc {
		b.Hits++
		return e.target, true
	}
	b.Misses++
	return 0, false
}

// Insert records a taken target.
func (b *BTB) Insert(pc, target uint32) {
	b.entries[(pc>>2)&b.mask] = btbEntry{tag: pc, target: target, valid: true}
}

// ---- RAS ----

// RAS is the return address stack (checkpointed by copy on recovery —
// with 16 entries a full copy is cheap).
//
//lint:hotpath
type RAS struct {
	stack []uint32
	size  int //lint:resetless capacity, fixed at construction
}

// NewRAS builds a return-address stack.
func NewRAS(size int) *RAS { return &RAS{size: size} }

// Push records a return address at a call.
func (r *RAS) Push(addr uint32) {
	if len(r.stack) == r.size {
		copy(r.stack, r.stack[1:])
		r.stack = r.stack[:r.size-1]
	}
	r.stack = append(r.stack, addr)
}

// Pop predicts a return target.
func (r *RAS) Pop() (uint32, bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	a := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return a, true
}

// Snapshot copies the stack for recovery. It returns nil for an empty
// stack (recovery skips the restore in that case).
//
//lint:coldpath convenience copy; the cores snapshot through SnapshotInto with pooled buffers
func (r *RAS) Snapshot() []uint32 { return append([]uint32(nil), r.stack...) }

// SnapshotInto copies the stack into dst's backing array (reusing its
// capacity) and returns the result, nil for an empty stack — the same
// nil-for-empty contract as Snapshot, but allocation-free once dst has
// capacity. The cores pool these buffers across µop lifetimes.
func (r *RAS) SnapshotInto(dst []uint32) []uint32 {
	if len(r.stack) == 0 {
		return nil
	}
	return append(dst[:0], r.stack...) //lint:alloc reuses dst capacity; allocates only until the snapshot pool reaches steady state
}

// Depth returns the current stack depth.
func (r *RAS) Depth() int { return len(r.stack) }

// Restore rewinds to a snapshot.
func (r *RAS) Restore(s []uint32) { r.stack = append(r.stack[:0], s...) }
