package uarch

// TAGE: an 8-component tagged-geometric-history predictor in the spirit
// of Seznec's CBP-TAGE (paper Fig 14 uses an "8-component CBP-TAGE"):
// one bimodal base table plus seven tagged tables with geometrically
// increasing history lengths {5..130}. Usefulness counters steer
// allocation and a use-alt-on-newly-allocated counter reduces cold
// mispredictions.
//
// The speculative global history is a 192-bit shift register; every
// prediction checkpoints it (plus the provider context) in a bounded
// ring, and Recover restores the checkpoint on a misprediction — so deep
// speculation never corrupts training state.

const (
	tageTables   = 7
	tageTagBits  = 9
	tageIdxBits  = 10 // 1K entries per tagged table
	tageBaseBits = 13 // 8K bimodal entries
	tageMetaRing = 8192
)

// Geometric history lengths (min 5, max 130, ratio ~1.72).
var tageHistLens = [tageTables]int{5, 9, 15, 26, 44, 76, 130}

type tageEntry struct {
	ctr int8 // -4..3
	tag uint16
	use uint8 // 0..3
}

type tageHistory [3]uint64 // bit 0 = most recent outcome

func (h *tageHistory) push(taken bool) {
	carry1 := h[0] >> 63
	carry2 := h[1] >> 63
	h[0] = h[0]<<1 | b2u(taken)
	h[1] = h[1]<<1 | carry1
	h[2] = h[2]<<1 | carry2
}

// fold compresses the most recent n bits into `bits` output bits.
func (h *tageHistory) fold(n, bits int) uint32 {
	var f uint32
	for i := 0; i < n; i++ {
		bit := uint32(h[i/64]>>(uint(i)%64)) & 1
		f ^= bit << (uint(i) % uint(bits))
	}
	return f
}

type tageMeta struct {
	hist     tageHistory
	provider int8
	pred     bool
	provPred bool
	altPred  bool
	idx      [tageTables]uint16 // indices at prediction time
	tags     [tageTables]uint16
	baseIdx  uint32
}

// TAGE is the 8-component predictor.
type TAGE struct {
	base   []uint8
	tables [tageTables][]tageEntry
	hist   tageHistory
	useAlt int8
	rng    uint32

	metas  [tageMetaRing]tageMeta
	nextID uint64

	Allocations uint64
}

// NewTAGE builds the predictor.
func NewTAGE() *TAGE {
	t := &TAGE{base: make([]uint8, 1<<tageBaseBits), rng: 0x9E3779B9}
	for i := range t.base {
		t.base[i] = 1
	}
	for i := 0; i < tageTables; i++ {
		t.tables[i] = make([]tageEntry, 1<<tageIdxBits)
	}
	return t
}

func (t *TAGE) indexOf(table int, pc uint32, h *tageHistory) uint16 {
	f := h.fold(tageHistLens[table], tageIdxBits)
	return uint16((pc>>2 ^ pc>>(2+tageIdxBits) ^ f) & (1<<tageIdxBits - 1))
}

func (t *TAGE) tagOf(table int, pc uint32, h *tageHistory) uint16 {
	f1 := h.fold(tageHistLens[table], tageTagBits)
	f2 := h.fold(tageHistLens[table], tageTagBits-1)
	return uint16((pc>>2 ^ uint32(f1) ^ uint32(f2)<<1) & (1<<tageTagBits - 1))
}

// Predict implements DirPredictor.
func (t *TAGE) Predict(pc uint32) (bool, uint64) {
	m := tageMeta{provider: -1, hist: t.hist, baseIdx: (pc >> 2) & (1<<tageBaseBits - 1)}
	alt := -1
	for i := 0; i < tageTables; i++ {
		m.idx[i] = t.indexOf(i, pc, &t.hist)
		m.tags[i] = t.tagOf(i, pc, &t.hist)
	}
	for i := tageTables - 1; i >= 0; i-- {
		e := &t.tables[i][m.idx[i]]
		if e.tag == m.tags[i] {
			if m.provider < 0 {
				m.provider = int8(i)
				m.provPred = e.ctr >= 0
			} else {
				alt = i
				m.altPred = t.tables[i][m.idx[i]].ctr >= 0
				break
			}
		}
	}
	basePred := t.base[m.baseIdx] >= 2
	if alt < 0 {
		m.altPred = basePred
	}
	m.pred = basePred
	if m.provider >= 0 {
		e := &t.tables[m.provider][m.idx[m.provider]]
		weak := e.ctr == 0 || e.ctr == -1
		if weak && e.use == 0 && t.useAlt >= 0 {
			m.pred = m.altPred
		} else {
			m.pred = m.provPred
		}
	}
	id := t.nextID
	t.nextID++
	t.metas[id%tageMetaRing] = m
	t.hist.push(m.pred)
	return m.pred, id
}

// Update implements DirPredictor.
func (t *TAGE) Update(pc uint32, taken bool, metaID uint64) {
	m := &t.metas[metaID%tageMetaRing]
	correct := m.pred == taken

	if m.provider >= 0 {
		e := &t.tables[m.provider][m.idx[m.provider]]
		bumpCtr(&e.ctr, taken)
		if m.provPred != m.altPred {
			if m.provPred == taken {
				if e.use < 3 {
					e.use++
				}
			} else if e.use > 0 {
				e.use--
			}
		}
	} else {
		c := t.base[m.baseIdx]
		if taken && c < 3 {
			t.base[m.baseIdx] = c + 1
		}
		if !taken && c > 0 {
			t.base[m.baseIdx] = c - 1
		}
	}

	// use-alt counter training on weak providers.
	if m.provider >= 0 && m.provPred != m.altPred {
		if m.altPred == taken && t.useAlt < 7 {
			t.useAlt++
		} else if m.provPred == taken && t.useAlt > -8 {
			t.useAlt--
		}
	}

	// Allocate a longer-history entry on misprediction.
	if !correct && int(m.provider) < tageTables-1 {
		start := int(m.provider) + 1
		allocated := false
		for i := start; i < tageTables; i++ {
			e := &t.tables[i][m.idx[i]]
			if e.use == 0 {
				e.tag = m.tags[i]
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				e.use = 0
				t.Allocations++
				allocated = true
				break
			}
		}
		if !allocated {
			t.rng = t.rng*1664525 + 1013904223
			i := start + int(t.rng%uint32(tageTables-start))
			e := &t.tables[i][m.idx[i]]
			if e.use > 0 {
				e.use--
			}
		}
	}
}

func bumpCtr(c *int8, taken bool) {
	if taken && *c < 3 {
		*c++
	}
	if !taken && *c > -4 {
		*c--
	}
}

// Recover implements DirPredictor: restore the checkpointed history and
// push the actual outcome.
func (t *TAGE) Recover(metaID uint64, taken bool) {
	m := &t.metas[metaID%tageMetaRing]
	t.hist = m.hist
	t.hist.push(taken)
}

// Name implements DirPredictor.
func (t *TAGE) Name() string { return "tage" }
