package ptrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// StageSpan is one stage-occupancy interval of a parsed instruction.
// End is exclusive-ish in the Kanata sense: the cycle the E record was
// emitted; a span that was open at end-of-trace ends at the last cycle.
type StageSpan struct {
	Name  string
	Start int64
	End   int64
}

// Cycles returns the span length (at least 1: an S/E pair in the same
// cycle still occupied the stage for that cycle).
func (s StageSpan) Cycles() int64 {
	if d := s.End - s.Start; d > 0 {
		return d
	}
	return 1
}

// TraceInst is one dynamic instruction reassembled from the record
// stream.
type TraceInst struct {
	ID     uint64 // 0-based file id
	Label  string // left-pane text (pc + disassembly)
	Detail string // hover detail lines (stall-cause annotations)
	Spans  []StageSpan
	Deps   []uint64 // producer file ids

	Retired  bool
	Flushed  bool
	RetireID uint64

	FetchCycle int64
	DoneCycle  int64
}

// Lifetime returns fetch-to-done cycles.
func (i *TraceInst) Lifetime() int64 { return i.DoneCycle - i.FetchCycle + 1 }

// StageCycles returns the cycles spent in the named stage (summed over
// spans, for replayed stages).
func (i *TraceInst) StageCycles(name string) int64 {
	var n int64
	for _, s := range i.Spans {
		if s.Name == name {
			n += s.Cycles()
		}
	}
	return n
}

// Trace is a fully parsed Kanata log.
type Trace struct {
	Version    string
	Insts      []*TraceInst
	FirstCycle int64
	LastCycle  int64

	byID map[uint64]*TraceInst
}

// ByID resolves a file id.
func (t *Trace) ByID(id uint64) *TraceInst { return t.byID[id] }

// Parse reads a Kanata log produced by a Tracer (or any Kanata 0004
// writer that sticks to the C=/C/I/L/S/E/R/W records). Spans still open
// at end of input are closed at the last seen cycle and the instruction
// is marked flushed, mirroring Tracer.Close.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("ptrace: empty trace")
	}
	header := strings.SplitN(sc.Text(), "\t", 2)
	if header[0] != "Kanata" || len(header) != 2 {
		return nil, fmt.Errorf("ptrace: not a Kanata log (header %q)", sc.Text())
	}
	tr := &Trace{Version: header[1], byID: make(map[uint64]*TraceInst)}

	// One lane, so at most one span per instruction is open at a time —
	// which also means the *StageSpan stays valid: Spans can only grow
	// while no span of that instruction is open.
	openSpans := make(map[uint64]*StageSpan)
	var cycle int64
	cycleSet := false
	line := 1

	get := func(id uint64) *TraceInst {
		in := tr.byID[id]
		if in == nil {
			in = &TraceInst{ID: id, FetchCycle: cycle, DoneCycle: cycle}
			tr.byID[id] = in
			tr.Insts = append(tr.Insts, in)
		}
		return in
	}

	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Split(text, "\t")
		fail := func(msg string) error {
			return fmt.Errorf("ptrace: line %d: %s: %q", line, msg, text)
		}
		num := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
		unum := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }

		switch f[0] {
		case "C=":
			if len(f) != 2 {
				return nil, fail("malformed C=")
			}
			c, err := num(f[1])
			if err != nil {
				return nil, fail("bad cycle")
			}
			cycle = c
			if !cycleSet {
				cycleSet = true
				tr.FirstCycle = c
			}
		case "C":
			if len(f) != 2 {
				return nil, fail("malformed C")
			}
			d, err := num(f[1])
			if err != nil {
				return nil, fail("bad cycle delta")
			}
			cycle += d
		case "I":
			if len(f) != 4 {
				return nil, fail("malformed I")
			}
			id, err := unum(f[1])
			if err != nil {
				return nil, fail("bad id")
			}
			if tr.byID[id] != nil {
				return nil, fail("duplicate instruction id")
			}
			get(id)
		case "L":
			if len(f) != 4 {
				return nil, fail("malformed L")
			}
			id, err := unum(f[1])
			if err != nil {
				return nil, fail("bad id")
			}
			in := get(id)
			switch f[2] {
			case "0":
				in.Label = f[3]
			default:
				if in.Detail != "" {
					in.Detail += "\n"
				}
				in.Detail += f[3]
			}
		case "S":
			if len(f) != 4 {
				return nil, fail("malformed S")
			}
			id, err := unum(f[1])
			if err != nil {
				return nil, fail("bad id")
			}
			in := get(id)
			if openSpans[id] != nil {
				return nil, fail("stage started with another still open")
			}
			in.Spans = append(in.Spans, StageSpan{Name: f[3], Start: cycle, End: cycle})
			openSpans[id] = &in.Spans[len(in.Spans)-1]
		case "E":
			if len(f) != 4 {
				return nil, fail("malformed E")
			}
			id, err := unum(f[1])
			if err != nil {
				return nil, fail("bad id")
			}
			sp := openSpans[id]
			if sp == nil || sp.Name != f[3] {
				return nil, fail("stage end without matching start")
			}
			sp.End = cycle
			delete(openSpans, id)
			if in := get(id); cycle > in.DoneCycle {
				in.DoneCycle = cycle
			}
		case "R":
			if len(f) != 4 {
				return nil, fail("malformed R")
			}
			id, err := unum(f[1])
			if err != nil {
				return nil, fail("bad id")
			}
			rid, err := unum(f[2])
			if err != nil {
				return nil, fail("bad retire id")
			}
			in := get(id)
			if f[3] == "0" {
				in.Retired = true
				in.RetireID = rid
			} else {
				in.Flushed = true
			}
			if cycle > in.DoneCycle {
				in.DoneCycle = cycle
			}
		case "W":
			if len(f) != 4 {
				return nil, fail("malformed W")
			}
			con, err := unum(f[1])
			if err != nil {
				return nil, fail("bad consumer id")
			}
			prod, err := unum(f[2])
			if err != nil {
				return nil, fail("bad producer id")
			}
			get(con).Deps = append(get(con).Deps, prod)
		default:
			return nil, fail("unknown record")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	// Close dangling spans (trace truncated or writer lost the race with
	// process exit) and mark their owners flushed.
	for id, sp := range openSpans {
		sp.End = cycle
		in := tr.byID[id]
		if cycle > in.DoneCycle {
			in.DoneCycle = cycle
		}
		if !in.Retired {
			in.Flushed = true
		}
	}
	tr.LastCycle = cycle
	return tr, nil
}
