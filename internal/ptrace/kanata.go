package ptrace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// kanataHeader is the file signature of the log format version we emit;
// Konata accepts 0004 directly.
const kanataHeader = "Kanata\t0004"

// kanataWriter emits the tab-separated Kanata records:
//
//	C=	<cycle>                  set the absolute current cycle
//	C	<delta>                  advance the current cycle
//	I	<id>	<insn-id>	<tid>    declare an instruction
//	L	<id>	<type>	<text>       label (0 = left pane, 1 = hover detail)
//	S	<id>	<lane>	<stage>      stage begin
//	E	<id>	<lane>	<stage>      stage end
//	R	<id>	<retire-id>	<type>   retire (0) or flush (1)
//	W	<consumer>	<producer>	<type>  dependence edge
//
// Trace IDs are 1-based inside the package (0 = none); on the wire they
// are 0-based as Konata expects.
type kanataWriter struct {
	w         *bufio.Writer
	err       error
	headerOut bool
	cycleInit bool
	cycle     int64
}

func newKanataWriter(w io.Writer) *kanataWriter {
	return &kanataWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (k *kanataWriter) printf(format string, args ...any) {
	if k.err != nil {
		return
	}
	if !k.headerOut {
		k.headerOut = true
		if _, err := k.w.WriteString(kanataHeader + "\n"); err != nil {
			k.err = err
			return
		}
	}
	if _, err := fmt.Fprintf(k.w, format, args...); err != nil {
		k.err = err
	}
}

// setCycle emits the cycle records lazily: the first call pins the
// absolute cycle, later calls advance by delta.
func (k *kanataWriter) setCycle(c int64) {
	if !k.cycleInit {
		k.cycleInit = true
		k.cycle = c
		k.printf("C=\t%d\n", c)
		return
	}
	if c != k.cycle {
		k.printf("C\t%d\n", c-k.cycle)
		k.cycle = c
	}
}

func (k *kanataWriter) inst(id ID) {
	// insn-id mirrors the file id; thread is always 0 (single core).
	k.printf("I\t%d\t%d\t0\n", id-1, id-1)
}

func (k *kanataWriter) label(id ID, typ int, text string) {
	// Kanata records are newline-delimited; scrub separators from the
	// (already printable) disassembly defensively.
	text = strings.ReplaceAll(text, "\n", " ")
	text = strings.ReplaceAll(text, "\t", " ")
	k.printf("L\t%d\t%d\t%s\n", id-1, typ, text)
}

func (k *kanataWriter) stageStart(id ID, s Stage) {
	k.printf("S\t%d\t0\t%s\n", id-1, s.Name())
}

func (k *kanataWriter) stageEnd(id ID, s Stage) {
	k.printf("E\t%d\t0\t%s\n", id-1, s.Name())
}

func (k *kanataWriter) retire(id ID, retireID uint64, flush bool) {
	typ := 0
	if flush {
		typ = 1
		retireID = 0
	}
	k.printf("R\t%d\t%d\t%d\n", id-1, retireID, typ)
}

func (k *kanataWriter) dep(consumer, producer ID) {
	// Type 0: wakeup edge.
	k.printf("W\t%d\t%d\t0\n", consumer-1, producer-1)
}

func (k *kanataWriter) flush() error {
	if k.err != nil {
		return k.err
	}
	if !k.headerOut {
		// An empty run still yields a valid file.
		if _, err := k.w.WriteString(kanataHeader + "\n"); err != nil {
			return err
		}
	}
	return k.w.Flush()
}
