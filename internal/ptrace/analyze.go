package ptrace

import (
	"fmt"
	"sort"
	"strings"
)

// StageStat is the latency distribution of one pipeline stage across a
// trace.
type StageStat struct {
	Name      string
	Count     int
	Total     int64
	Max       int64
	durations []int64 // sorted lazily for percentiles
	sorted    bool
}

// Mean returns the average cycles per visit.
func (s *StageStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Total) / float64(s.Count)
}

// Percentile returns the p-th percentile duration (p in [0,100]).
func (s *StageStat) Percentile(p float64) int64 {
	if len(s.durations) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Slice(s.durations, func(i, j int) bool { return s.durations[i] < s.durations[j] })
		s.sorted = true
	}
	idx := int(p / 100 * float64(len(s.durations)-1))
	return s.durations[idx]
}

// Report is the offline analysis of one trace (cmd/straight-trace).
type Report struct {
	Trace *Trace

	Insts   int
	Retired int
	Flushed int

	// Stages holds per-stage latency stats in pipeline order (stages
	// that never occur are omitted).
	Stages []*StageStat

	// Longest lists instructions by descending fetch-to-done lifetime.
	Longest []*TraceInst
}

// stageOrder ranks the known stage mnemonics for display; unknown names
// sort after them.
var stageOrder = map[string]int{"F": 0, "Ds": 1, "Ex": 2, "Mm": 3, "Cm": 4}

// Analyze builds the report of a parsed trace.
func Analyze(tr *Trace) *Report {
	r := &Report{Trace: tr, Insts: len(tr.Insts)}
	stats := make(map[string]*StageStat)
	for _, in := range tr.Insts {
		if in.Retired {
			r.Retired++
		}
		if in.Flushed {
			r.Flushed++
		}
		for _, sp := range in.Spans {
			st := stats[sp.Name]
			if st == nil {
				st = &StageStat{Name: sp.Name}
				stats[sp.Name] = st
			}
			d := sp.Cycles()
			st.Count++
			st.Total += d
			if d > st.Max {
				st.Max = d
			}
			st.durations = append(st.durations, d)
		}
	}
	for _, st := range stats {
		r.Stages = append(r.Stages, st)
	}
	sort.Slice(r.Stages, func(i, j int) bool {
		oi, iok := stageOrder[r.Stages[i].Name]
		oj, jok := stageOrder[r.Stages[j].Name]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return r.Stages[i].Name < r.Stages[j].Name
		}
	})
	r.Longest = append(r.Longest, tr.Insts...)
	sort.SliceStable(r.Longest, func(i, j int) bool {
		return r.Longest[i].Lifetime() > r.Longest[j].Lifetime()
	})
	return r
}

// histWidth is the bar width of the textual latency histograms.
const histWidth = 40

// Format renders the report: summary, per-stage latency table with
// percentile bars, and the top-N longest-lived instructions with their
// disassembly and dependence edges.
func (r *Report) Format(topN int) string {
	var b strings.Builder
	cycles := r.Trace.LastCycle - r.Trace.FirstCycle + 1
	fmt.Fprintf(&b, "trace: %d instructions (%d retired, %d flushed) over %d cycles [%d..%d]\n",
		r.Insts, r.Retired, r.Flushed, cycles, r.Trace.FirstCycle, r.Trace.LastCycle)
	if cycles > 0 && r.Retired > 0 {
		fmt.Fprintf(&b, "retired IPC over the traced span: %.3f\n", float64(r.Retired)/float64(cycles))
	}

	b.WriteString("\nstage latency (cycles per visit)\n")
	fmt.Fprintf(&b, "%-6s %10s %8s %6s %6s %6s %6s\n", "stage", "visits", "mean", "p50", "p90", "p99", "max")
	for _, st := range r.Stages {
		fmt.Fprintf(&b, "%-6s %10d %8.2f %6d %6d %6d %6d\n",
			st.Name, st.Count, st.Mean(),
			st.Percentile(50), st.Percentile(90), st.Percentile(99), st.Max)
	}
	b.WriteString("\nstage share of total instruction-cycles\n")
	var totalStage int64
	for _, st := range r.Stages {
		totalStage += st.Total
	}
	for _, st := range r.Stages {
		frac := 0.0
		if totalStage > 0 {
			frac = float64(st.Total) / float64(totalStage)
		}
		bar := strings.Repeat("#", int(frac*histWidth+0.5))
		fmt.Fprintf(&b, "%-6s %6.1f%% %s\n", st.Name, 100*frac, bar)
	}

	if topN > len(r.Longest) {
		topN = len(r.Longest)
	}
	if topN > 0 {
		fmt.Fprintf(&b, "\ntop %d longest-lived instructions\n", topN)
		for _, in := range r.Longest[:topN] {
			status := "retired"
			if in.Flushed {
				status = "flushed"
			}
			fmt.Fprintf(&b, "#%-6d %4d cycles [%d..%d] %-8s %s\n",
				in.ID, in.Lifetime(), in.FetchCycle, in.DoneCycle, status, in.Label)
			var stages []string
			for _, sp := range in.Spans {
				stages = append(stages, fmt.Sprintf("%s=%d", sp.Name, sp.Cycles()))
			}
			if len(stages) > 0 {
				fmt.Fprintf(&b, "        stages: %s\n", strings.Join(stages, " "))
			}
			for _, dep := range in.Deps {
				label := "?"
				if p := r.Trace.ByID(dep); p != nil {
					label = p.Label
				}
				fmt.Fprintf(&b, "        waits-on #%d %s\n", dep, label)
			}
			if in.Detail != "" {
				fmt.Fprintf(&b, "        notes: %s\n", strings.ReplaceAll(in.Detail, "\n", "; "))
			}
		}
	}
	return b.String()
}

// FormatStallTable renders the stall-cause accounting of a traced run's
// time series. The cycle counts are exactly the uarch.Stats counters of
// the run (see doc.go); the share column is relative to total simulated
// cycles. Causes can overlap within a cycle (fetch and dispatch each
// attribute their own blocked cycles), so shares need not sum to 100%.
func FormatStallTable(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall-cause accounting over %d cycles (retired %d, IPC %.3f)\n",
		s.Cycles, s.Retired, float64(s.Retired)/float64(max64(s.Cycles, 1)))
	fmt.Fprintf(&b, "%-12s %12s %8s\n", "cause", "cycles", "share")
	for c := StallCause(0); c < NumStallCauses; c++ {
		n := s.StallTotals[c.Name()]
		share := 0.0
		if s.Cycles > 0 {
			share = float64(n) / float64(s.Cycles)
		}
		fmt.Fprintf(&b, "%-12s %12d %7.1f%%\n", c.Name(), n, 100*share)
	}
	return b.String()
}

// FormatWindows renders the windowed time series as a table with an IPC
// sparkline per window.
func FormatWindows(s *Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "time series (%d-cycle windows)\n", s.WindowCycles)
	fmt.Fprintf(&b, "%12s %8s %8s %8s %8s  %s\n", "start", "ipc", "rob", "iq", "lsq", "dominant stall")
	for _, w := range s.Windows {
		dom, domN := "-", int64(0)
		for cause, n := range w.Stalls {
			if n > domN {
				dom, domN = cause, n
			}
		}
		domCol := dom
		if domN > 0 {
			domCol = fmt.Sprintf("%s (%d)", dom, domN)
		}
		fmt.Fprintf(&b, "%12d %8.3f %8.1f %8.1f %8.1f  %s\n",
			w.Start, w.IPC, w.ROBOcc, w.IQOcc, w.LQOcc+w.SQOcc, domCol)
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
