package ptrace_test

import (
	"bytes"
	"reflect"
	"testing"

	"straight/internal/bench"
	"straight/internal/cores/sscore"
	"straight/internal/cores/straightcore"
	"straight/internal/ptrace"
	"straight/internal/uarch"
	"straight/internal/workloads"
)

// TestTraceIdenticalWithIdleSkip is the acceptance check of idle-skip
// trace replay: with a tracer attached, a skipped window replays its
// per-cycle trace records (cycle marker, charged stall, occupancy
// sample), so the Kanata byte stream and the windowed time series are
// identical whether the fast path is on or off — `straight-trace`
// output cannot change when skipping is enabled. The memory-bound
// configuration makes the skipped spans long and frequent, and
// micro-branch adds fetch redirects and memory-dependence recoveries at
// skip-window boundaries. Window 500 also pins that skipped spans never
// produce empty series windows: each replayed cycle carries its stall
// cause into the window it belongs to.
func TestTraceIdenticalWithIdleSkip(t *testing.T) {
	t.Run("straight", func(t *testing.T) {
		im, err := bench.BuildSTRAIGHT(workloads.MicroBranch, 1, 0, bench.ModeREP)
		if err != nil {
			t.Fatal(err)
		}
		cfg := uarch.Straight4WayMemBound()
		run := func(noskip bool) ([]byte, *ptrace.Series, uarch.Stats, int64) {
			var buf bytes.Buffer
			tr := ptrace.New(&buf, ptrace.Config{Window: 500})
			opts := straightcore.Options{MaxCycles: 200_000_000, Tracer: tr, NoIdleSkip: noskip}
			core := straightcore.New(cfg, im, opts)
			res, err := core.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), tr.Series(), res.Stats, core.SkipStats().SkippedCycles
		}
		skipTrace, skipSeries, skipStats, skipped := run(false)
		plainTrace, plainSeries, plainStats, _ := run(true)
		if skipped == 0 {
			t.Fatal("no cycles were skipped; the test exercises nothing")
		}
		if !reflect.DeepEqual(skipStats, plainStats) {
			t.Errorf("stats differ between skip modes:\nskip:  %+v\nplain: %+v", skipStats, plainStats)
		}
		if !bytes.Equal(skipTrace, plainTrace) {
			t.Errorf("Kanata trace differs between skip modes: %d vs %d bytes", len(skipTrace), len(plainTrace))
		}
		if !reflect.DeepEqual(skipSeries, plainSeries) {
			t.Errorf("windowed series differs between skip modes")
		}
	})

	t.Run("ss", func(t *testing.T) {
		im, err := bench.BuildRISCV(workloads.MicroBranch, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := uarch.SS4WayMemBound()
		run := func(noskip bool) ([]byte, *ptrace.Series, uarch.Stats, int64) {
			var buf bytes.Buffer
			tr := ptrace.New(&buf, ptrace.Config{Window: 500})
			opts := sscore.Options{MaxCycles: 200_000_000, Tracer: tr, NoIdleSkip: noskip}
			core := sscore.New(cfg, im, opts)
			res, err := core.Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Close(); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes(), tr.Series(), res.Stats, core.SkipStats().SkippedCycles
		}
		skipTrace, skipSeries, skipStats, skipped := run(false)
		plainTrace, plainSeries, plainStats, _ := run(true)
		if skipped == 0 {
			t.Fatal("no cycles were skipped; the test exercises nothing")
		}
		if !reflect.DeepEqual(skipStats, plainStats) {
			t.Errorf("stats differ between skip modes:\nskip:  %+v\nplain: %+v", skipStats, plainStats)
		}
		if !bytes.Equal(skipTrace, plainTrace) {
			t.Errorf("Kanata trace differs between skip modes: %d vs %d bytes", len(skipTrace), len(plainTrace))
		}
		if !reflect.DeepEqual(skipSeries, plainSeries) {
			t.Errorf("windowed series differs between skip modes")
		}
	})
}
