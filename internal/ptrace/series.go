package ptrace

import (
	"encoding/json"
	"fmt"
	"os"
)

// Series is the cycle-sampled time-series channel of a traced run: one
// Window per sampling interval plus whole-run totals. It marshals to
// JSON next to the Kanata log (SeriesPath) and is embedded in the bench
// -json report when a sweep point is traced.
type Series struct {
	WindowCycles int64  `json:"window_cycles"`
	Cycles       int64  `json:"cycles"`
	Fetched      uint64 `json:"fetched"`
	Retired      uint64 `json:"retired"`
	Squashed     uint64 `json:"squashed"`

	// StallTotals maps StallCause.Name() to whole-run blocked cycles;
	// the values reconcile exactly with the uarch.Stats counters of the
	// same run (see doc.go).
	StallTotals map[string]int64 `json:"stall_totals"`

	Windows []Window `json:"windows"`
}

// Window aggregates one sampling interval.
type Window struct {
	Start   int64   `json:"start_cycle"`
	Cycles  int64   `json:"cycles"`
	Retired uint64  `json:"retired"`
	IPC     float64 `json:"ipc"`

	// Stalls maps StallCause.Name() to blocked cycles in this window.
	Stalls map[string]int64 `json:"stalls,omitempty"`

	// Mean structure occupancies over the window.
	ROBOcc float64 `json:"rob_occ"`
	IQOcc  float64 `json:"iq_occ"`
	LQOcc  float64 `json:"lq_occ"`
	SQOcc  float64 `json:"sq_occ"`
}

// seriesBuilder accumulates integer sums per window and converts on
// flush; totals are kept separately so they are exact regardless of
// window boundaries.
type seriesBuilder struct {
	window int64

	started  bool
	curStart int64
	lastTick int64

	// Per-window accumulators.
	cycles  int64
	retired uint64
	stalls  [NumStallCauses]int64
	robSum  int64
	iqSum   int64
	lqSum   int64
	sqSum   int64

	// Whole-run totals.
	totals      [NumStallCauses]int64
	allRetired  uint64
	allCycles   int64
	fetched     uint64
	squashed    uint64
	windowsDone []Window
}

func newSeriesBuilder(window int64) *seriesBuilder {
	return &seriesBuilder{window: window}
}

// tick is called once per simulated cycle, before that cycle's events.
func (s *seriesBuilder) tick(cycle int64) {
	if !s.started {
		s.started = true
		s.curStart = cycle
	} else if cycle >= s.curStart+s.window {
		s.flushWindow()
		s.curStart = cycle
	}
	s.lastTick = cycle
	s.cycles++
	s.allCycles++
}

func (s *seriesBuilder) stall(cause StallCause, n int64) {
	s.stalls[cause] += n
	s.totals[cause] += n
}

func (s *seriesBuilder) sample(rob, iq, lq, sq int) {
	s.robSum += int64(rob)
	s.iqSum += int64(iq)
	s.lqSum += int64(lq)
	s.sqSum += int64(sq)
}

func (s *seriesBuilder) flushWindow() {
	if s.cycles == 0 {
		return
	}
	w := Window{
		Start:   s.curStart,
		Cycles:  s.cycles,
		Retired: s.retired,
		IPC:     float64(s.retired) / float64(s.cycles),
		ROBOcc:  float64(s.robSum) / float64(s.cycles),
		IQOcc:   float64(s.iqSum) / float64(s.cycles),
		LQOcc:   float64(s.lqSum) / float64(s.cycles),
		SQOcc:   float64(s.sqSum) / float64(s.cycles),
	}
	for c := StallCause(0); c < NumStallCauses; c++ {
		if s.stalls[c] != 0 {
			if w.Stalls == nil {
				w.Stalls = make(map[string]int64, int(NumStallCauses))
			}
			w.Stalls[c.Name()] = s.stalls[c]
		}
	}
	s.windowsDone = append(s.windowsDone, w)
	s.cycles, s.retired = 0, 0
	s.stalls = [NumStallCauses]int64{}
	s.robSum, s.iqSum, s.lqSum, s.sqSum = 0, 0, 0, 0
}

func (s *seriesBuilder) build() *Series {
	s.flushWindow()
	out := &Series{
		WindowCycles: s.window,
		Cycles:       s.allCycles,
		Fetched:      s.fetched,
		Retired:      s.allRetired,
		Squashed:     s.squashed,
		StallTotals:  make(map[string]int64, int(NumStallCauses)),
		Windows:      s.windowsDone,
	}
	for c := StallCause(0); c < NumStallCauses; c++ {
		out.StallTotals[c.Name()] = s.totals[c]
	}
	return out
}

// The retired counter is bumped by Tracer.Commit through these tiny
// helpers so both the window and the run total stay in step.
func (s *seriesBuilder) addRetired() {
	s.retired++
	s.allRetired++
}

// SeriesPath returns the conventional sidecar path of a trace file's
// time series ("<trace>.series.json").
func SeriesPath(tracePath string) string { return tracePath + ".series.json" }

// WriteSeriesFile marshals s as indented JSON to path.
func WriteSeriesFile(path string, s *Series) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// ReadSeriesFile loads a series sidecar written by WriteSeriesFile.
func ReadSeriesFile(path string) (*Series, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Series
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("ptrace: parsing %s: %w", path, err)
	}
	return &s, nil
}
