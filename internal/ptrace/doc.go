// Package ptrace is the per-instruction pipeline observability layer
// shared by both cycle-level cores (internal/cores/straightcore and
// internal/cores/sscore).
//
// The aggregate counters of uarch.Stats say *how often* dispatch was
// blocked or a branch mispredicted; they cannot say *which* instruction
// waited where, or how the stall mix evolved over a run. ptrace answers
// those lifetime-of-an-instruction questions — exactly the form of the
// paper's own arguments (one-ROB-read recovery §IV-D, no rename-stage
// serialization) — by recording every pipeline edge an instruction
// crosses.
//
// # Tracer
//
// A *Tracer is handed to a core through its Options. Every hook is safe
// on a nil receiver and every call site in the cores is additionally
// guarded by an explicit `if tr != nil` check, so the disabled path costs
// one predictable branch per hook (BenchmarkSimTracedVsUntraced in
// internal/bench guards this). The hooks mirror the cores' lifecycle
// edges:
//
//	Fetch      instruction leaves the I-cache (enters the decode pipe)
//	Dispatch   operands determined (STRAIGHT RP-adds / SS rename) and the
//	           instruction enters ROB+scheduler; dependence edges recorded
//	Issue      selected by the scheduler, operands read, FU allocated
//	Writeback  result produced (execute or memory access complete)
//	Commit     retired in order
//	Squash     discarded on a misprediction or memory-order violation
//	Stall      a dispatch-blocked cycle attributed to a StallCause
//
// # Output
//
// The event stream is written in the Kanata 0004 log format, so traces
// open directly in the Konata pipeline visualizer
// (https://github.com/shioyadan/Konata): `I`/`L` records declare an
// instruction and its disassembly, `S`/`E` delimit stage occupancy
// (stages F, Ds, Ex, Mm, Cm), `W` records dependence wakeups, and `R`
// records retirement or flush. Parse reads the same format back for the
// offline analyzer (cmd/straight-trace).
//
// Alongside the event log the Tracer accumulates a cycle-sampled time
// series (windowed IPC, per-cause stall cycles, ROB/IQ/LSQ occupancy)
// plus whole-run stall-cause totals. The totals are incremented at
// exactly the sites that increment the corresponding uarch.Stats
// counters, so they reconcile exactly — an invariant the integration
// tests assert. The series marshals to JSON next to the trace (see
// SeriesPath) and is threaded into the bench -json report when a sweep
// point is traced.
package ptrace
