package ptrace

import (
	"bytes"
	"strings"
	"testing"
)

// synthTrace drives a small hand-scheduled pipeline through a Tracer:
// three instructions where #2 depends on #1, #3 is squashed, and one
// rob-full stall cycle is charged.
func synthTrace(t *testing.T, w *bytes.Buffer) *Tracer {
	t.Helper()
	tr := New(w, Config{Window: 4})

	tr.BeginCycle(0)
	a := tr.Fetch(0x1000, "ADDi [0], 1")
	b := tr.Fetch(0x1004, "ADD [1], [2]")

	tr.BeginCycle(1)
	tr.Dispatch(a, 5, -1, -1)
	tr.Stall(StallROBFull, b)

	tr.BeginCycle(2)
	tr.Dispatch(b, 6, 5, -1) // reads a's destination: W edge b<-a
	tr.Issue(a, false)
	c := tr.Fetch(0x1008, "LD [1], 8")

	tr.BeginCycle(3)
	tr.Writeback(a)
	tr.Issue(b, false)
	tr.Dispatch(c, 7, 6, -1)

	tr.BeginCycle(4)
	tr.Commit(a)
	tr.Writeback(b)
	tr.Squash(c)
	tr.Squash(c) // idempotent: second call must be a no-op

	tr.BeginCycle(5)
	tr.Commit(b)
	tr.Sample(1, 2, 3, 4)

	if err := tr.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return tr
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	synthTrace(t, &buf)

	text := buf.String()
	if !strings.HasPrefix(text, kanataHeader+"\n") {
		t.Fatalf("missing header, got %q", text[:20])
	}

	trace, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if trace.Version != "0004" {
		t.Errorf("version = %q, want 0004", trace.Version)
	}
	if len(trace.Insts) != 3 {
		t.Fatalf("got %d instructions, want 3", len(trace.Insts))
	}
	if trace.FirstCycle != 0 || trace.LastCycle != 5 {
		t.Errorf("cycle span [%d..%d], want [0..5]", trace.FirstCycle, trace.LastCycle)
	}

	a, b, c := trace.ByID(0), trace.ByID(1), trace.ByID(2)
	if a == nil || b == nil || c == nil {
		t.Fatal("missing instructions by id")
	}
	if !a.Retired || !b.Retired || c.Retired {
		t.Errorf("retired flags: a=%v b=%v c=%v, want true,true,false", a.Retired, b.Retired, c.Retired)
	}
	if !c.Flushed {
		t.Error("c should be flushed")
	}
	if a.RetireID != 1 || b.RetireID != 2 {
		t.Errorf("retire ids a=%d b=%d, want 1,2", a.RetireID, b.RetireID)
	}
	if a.Label != "00001000: ADDi [0], 1" {
		t.Errorf("a label = %q", a.Label)
	}
	if len(b.Deps) != 1 || b.Deps[0] != 0 {
		t.Errorf("b deps = %v, want [0]", b.Deps)
	}
	if !strings.Contains(b.Detail, "stall rob-full @1") {
		t.Errorf("b detail = %q, want rob-full annotation", b.Detail)
	}

	// a: F [0..1], Ds [1..2], Ex [2..3], Cm [3..4].
	wantStages := []string{"F", "Ds", "Ex", "Cm"}
	if len(a.Spans) != len(wantStages) {
		t.Fatalf("a spans = %+v", a.Spans)
	}
	for i, name := range wantStages {
		if a.Spans[i].Name != name {
			t.Errorf("a span %d = %s, want %s", i, a.Spans[i].Name, name)
		}
	}
	if got := a.StageCycles("F"); got != 1 {
		t.Errorf("a F cycles = %d, want 1", got)
	}
	if a.Lifetime() != 5 {
		t.Errorf("a lifetime = %d, want 5", a.Lifetime())
	}
}

func TestTracerSeries(t *testing.T) {
	var buf bytes.Buffer
	tr := synthTrace(t, &buf)

	s := tr.Series()
	if s.Cycles != 6 {
		t.Errorf("cycles = %d, want 6", s.Cycles)
	}
	if s.Fetched != 3 || s.Retired != 2 || s.Squashed != 1 {
		t.Errorf("fetched/retired/squashed = %d/%d/%d, want 3/2/1", s.Fetched, s.Retired, s.Squashed)
	}
	if s.StallTotals[StallROBFull.Name()] != 1 {
		t.Errorf("rob-full total = %d, want 1", s.StallTotals[StallROBFull.Name()])
	}
	// Window 4: [0..3] and [4..5].
	if len(s.Windows) != 2 {
		t.Fatalf("windows = %+v", s.Windows)
	}
	if s.Windows[0].Cycles != 4 || s.Windows[1].Cycles != 2 {
		t.Errorf("window cycles = %d,%d, want 4,2", s.Windows[0].Cycles, s.Windows[1].Cycles)
	}
	// Both commits (cycles 4 and 5) land in the second window.
	if s.Windows[0].Retired != 0 || s.Windows[1].Retired != 2 {
		t.Errorf("window retired = %d,%d, want 0,2", s.Windows[0].Retired, s.Windows[1].Retired)
	}
	if s.Windows[1].SQOcc == 0 {
		t.Error("sample in second window lost")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.BeginCycle(0)
	id := tr.Fetch(0, "x")
	if id != 0 {
		t.Errorf("nil Fetch = %d, want 0", id)
	}
	tr.Dispatch(id, 0, -1, -1)
	tr.Issue(id, false)
	tr.Writeback(id)
	tr.Commit(id)
	tr.Squash(id)
	tr.Stall(StallIQFull, id)
	tr.StallN(StallRecovery, 3)
	tr.Sample(0, 0, 0, 0)
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	if s := tr.Series(); s != nil {
		t.Errorf("nil Series = %+v", s)
	}
	if err := tr.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
}

func TestCloseFlushesLiveAsSquashed(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Config{})
	tr.BeginCycle(0)
	tr.Fetch(0x2000, "NOP")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Insts) != 1 || !trace.Insts[0].Flushed {
		t.Errorf("in-flight instruction at Close not flushed: %+v", trace.Insts)
	}
}

func TestLabelScrubsTabsAndNewlines(t *testing.T) {
	var buf bytes.Buffer
	tr := New(&buf, Config{})
	tr.BeginCycle(0)
	tr.Fetch(0, "a\tb\nc")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	trace, err := Parse(&buf)
	if err != nil {
		t.Fatalf("parse after scrub: %v\n%s", err, buf.String())
	}
	if strings.ContainsAny(trace.Insts[0].Label, "\t\n") {
		t.Errorf("label not scrubbed: %q", trace.Insts[0].Label)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad header":    "Konata\t0004\n",
		"unknown rec":   "Kanata\t0004\nX\t1\n",
		"dup inst":      "Kanata\t0004\nI\t0\t0\t0\nI\t0\t0\t0\n",
		"end wo start":  "Kanata\t0004\nI\t0\t0\t0\nE\t0\t0\tF\n",
		"double start":  "Kanata\t0004\nI\t0\t0\t0\nS\t0\t0\tF\nS\t0\t0\tDs\n",
		"short S":       "Kanata\t0004\nS\t0\t0\n",
		"bad cycle":     "Kanata\t0004\nC=\tzzz\n",
		"empty":         "",
		"wrong E stage": "Kanata\t0004\nI\t0\t0\t0\nS\t0\t0\tF\nE\t0\t0\tDs\n",
	}
	for name, text := range cases {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, text)
		}
	}
}

func TestParseClosesDanglingSpans(t *testing.T) {
	text := "Kanata\t0004\nC=\t0\nI\t0\t0\t0\nS\t0\t0\tF\nC\t3\n"
	trace, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	in := trace.Insts[0]
	if !in.Flushed {
		t.Error("dangling instruction not marked flushed")
	}
	if len(in.Spans) != 1 || in.Spans[0].End != 3 {
		t.Errorf("dangling span = %+v, want end at 3", in.Spans)
	}
}

func TestAnalyzeReport(t *testing.T) {
	var buf bytes.Buffer
	tr := synthTrace(t, &buf)
	trace, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r := Analyze(trace)
	if r.Insts != 3 || r.Retired != 2 || r.Flushed != 1 {
		t.Errorf("report counts %d/%d/%d, want 3/2/1", r.Insts, r.Retired, r.Flushed)
	}
	if len(r.Longest) != 3 || r.Longest[0].Lifetime() < r.Longest[2].Lifetime() {
		t.Errorf("longest not sorted: %+v", r.Longest)
	}
	out := r.Format(2)
	for _, want := range []string{"3 instructions", "stage latency", "ADDi [0], 1", "waits-on"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	st := FormatStallTable(tr.Series())
	if !strings.Contains(st, "rob-full") {
		t.Errorf("stall table missing rob-full:\n%s", st)
	}
	fw := FormatWindows(tr.Series())
	if !strings.Contains(fw, "4-cycle windows") {
		t.Errorf("windows header wrong:\n%s", fw)
	}
}

func TestSeriesFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := synthTrace(t, &buf)
	s := tr.Series()

	path := t.TempDir() + "/t.kanata"
	sp := SeriesPath(path)
	if sp != path+".series.json" {
		t.Fatalf("SeriesPath = %q", sp)
	}
	if err := WriteSeriesFile(sp, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSeriesFile(sp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != s.Cycles || got.Retired != s.Retired || len(got.Windows) != len(s.Windows) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, s)
	}
	if got.StallTotals[StallROBFull.Name()] != s.StallTotals[StallROBFull.Name()] {
		t.Error("stall totals lost in round trip")
	}
}

func TestStallCauseNames(t *testing.T) {
	seen := map[string]bool{}
	for c := StallCause(0); c < NumStallCauses; c++ {
		n := c.Name()
		if n == "" || n == "stall?" || seen[n] {
			t.Errorf("cause %d has bad/duplicate name %q", c, n)
		}
		seen[n] = true
		back, ok := StallCauseByName(n)
		if !ok || back != c {
			t.Errorf("StallCauseByName(%q) = %v,%v", n, back, ok)
		}
	}
	if _, ok := StallCauseByName("nope"); ok {
		t.Error("StallCauseByName accepted unknown name")
	}
}
