// Integration tests live in an external test package: the cores import
// ptrace, so importing them (via sasm/rasm/bench) from package ptrace
// would cycle.
package ptrace_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"straight/internal/bench"
	"straight/internal/cores/sscore"
	"straight/internal/cores/straightcore"
	"straight/internal/ptrace"
	"straight/internal/rasm"
	"straight/internal/sasm"
	"straight/internal/uarch"
	"straight/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// straightProg is the paper's Fibonacci idiom: pure straight-line code,
// so the trace is fully deterministic.
const straightProg = `
main:
    ADDi [0], 0
    ADDi [0], 1
    ADD  [1], [2]
    ADD  [1], [2]
    ADD  [1], [2]
    ADDi [0], 0
    SYS  exit, [1]
`

// riscvProg is a short counted loop: the backward branch mispredicts at
// least once, so squash records appear in the golden trace.
const riscvProg = `
main:
    addi t0, zero, 0
    addi t1, zero, 3
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    addi a0, zero, 0
    addi a7, zero, 0
    ecall
`

// goldenCheck byte-compares a generated trace against its testdata file,
// and verifies the bytes parse as Kanata 0004.
func goldenCheck(t *testing.T, name string, got []byte) {
	t.Helper()
	trace, err := ptrace.Parse(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("generated trace does not parse: %v\n%s", err, got)
	}
	if trace.Version != "0004" {
		t.Fatalf("trace version = %q, want 0004", trace.Version)
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run: go test ./internal/ptrace/ -run Golden -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: trace diverged from golden file; inspect with straight-trace, then "+
			"regenerate with -update if the change is intended\n got %d bytes, want %d",
			name, len(got), len(want))
	}
}

func TestGoldenStraightTrace(t *testing.T) {
	im, err := sasm.Assemble(straightProg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := ptrace.New(&buf, ptrace.Config{})
	opts := straightcore.Options{MaxCycles: 100_000, Tracer: tr, CrossValidate: true}
	if _, err := straightcore.New(uarch.Straight4Way(), im, opts).Run(opts); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "straight-fib.kanata", buf.Bytes())
}

func TestGoldenSSTrace(t *testing.T) {
	im, err := rasm.Assemble(riscvProg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := ptrace.New(&buf, ptrace.Config{})
	opts := sscore.Options{MaxCycles: 100_000, Tracer: tr, CrossValidate: true}
	if _, err := sscore.New(uarch.SS4Way(), im, opts).Run(opts); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	goldenCheck(t, "ss-loop.kanata", buf.Bytes())
}

// TestStallReconciliation is the acceptance check of the stall taxonomy:
// every tracer stall total must equal the corresponding uarch.Stats
// counter of the same run, on both cores, on a branchy workload.
func TestStallReconciliation(t *testing.T) {
	type run struct {
		name   string
		series *ptrace.Series
		trace  *ptrace.Trace
		stats  uarch.Stats
	}
	var runs []run

	{
		im, err := bench.BuildSTRAIGHT(workloads.MicroBranch, 1, 0, bench.ModeREP)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr := ptrace.New(&buf, ptrace.Config{Window: 500})
		res, err := bench.RunStraightTraced(uarch.Straight4Way(), im, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		trace, err := ptrace.Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{"straight", tr.Series(), trace, res.Stats})
	}
	{
		im, err := bench.BuildRISCV(workloads.MicroBranch, 1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		tr := ptrace.New(&buf, ptrace.Config{Window: 500})
		res, err := bench.RunSSTraced(uarch.SS4Way(), im, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
		trace, err := ptrace.Parse(&buf)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{"ss", tr.Series(), trace, res.Stats})
	}

	for _, r := range runs {
		s, st := r.series, r.stats
		if s.Cycles != st.Cycles {
			t.Errorf("%s: series cycles %d != stats cycles %d", r.name, s.Cycles, st.Cycles)
		}
		if s.Retired != st.Retired {
			t.Errorf("%s: series retired %d != stats retired %d", r.name, s.Retired, st.Retired)
		}
		if s.Fetched != st.FetchedInsts {
			t.Errorf("%s: series fetched %d != stats fetched %d", r.name, s.Fetched, st.FetchedInsts)
		}
		want := map[string]int64{
			"rob-full":    st.StallROBFull,
			"iq-full":     st.StallIQFull,
			"lsq-full":    st.StallLSQFull,
			"free-list":   st.StallFreeList,
			"front-end":   st.StallFrontEnd,
			"spadd-limit": st.StallSPAddLimit,
			"recovery":    st.RecoveryStall,
		}
		for cause, n := range want {
			if got := s.StallTotals[cause]; got != n {
				t.Errorf("%s: stall %q: tracer=%d stats=%d", r.name, cause, got, n)
			}
		}

		// The parsed trace agrees with the run too: every stats-retired
		// instruction has a retire record.
		var retired uint64
		for _, in := range r.trace.Insts {
			if in.Retired {
				retired++
			}
		}
		if retired != st.Retired {
			t.Errorf("%s: trace retired %d != stats retired %d", r.name, retired, st.Retired)
		}
		if r.trace.Version != "0004" {
			t.Errorf("%s: version %q", r.name, r.trace.Version)
		}
	}
}

// TestTracedRunMatchesUntraced proves tracing is purely observational:
// identical cycle counts and stats with and without a tracer.
func TestTracedRunMatchesUntraced(t *testing.T) {
	im, err := bench.BuildSTRAIGHT(workloads.MicroFib, 1, 0, bench.ModeREP)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := bench.RunStraight(uarch.Straight4Way(), im)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tr := ptrace.New(&buf, ptrace.Config{})
	traced, err := bench.RunStraightTraced(uarch.Straight4Way(), im, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if plain.Stats != traced.Stats {
		t.Errorf("stats diverge under tracing:\nplain:  %+v\ntraced: %+v", plain.Stats, traced.Stats)
	}
}
