package ptrace

import (
	"fmt"
	"io"
)

// ID identifies one traced dynamic instruction. IDs are assigned at
// fetch, dense from 1; 0 means "not traced" (the zero value of the field
// the cores keep per fetched instruction).
type ID uint64

// Stage is a pipeline occupancy interval as drawn by Konata. The cores
// model fetch-to-dispatch as one pipe, so the classic F/Dc/Rn stages
// collapse into StageFetch, and operand determination (STRAIGHT RP-adds,
// SS rename) happens at the StageFetch -> StageDispatch edge.
type Stage uint8

const (
	// StageFetch: fetched, traversing the front-end decode pipe.
	StageFetch Stage = iota
	// StageDispatch: in the ROB and scheduler, waiting for operands and
	// a functional unit.
	StageDispatch
	// StageExecute: executing in a non-memory functional unit.
	StageExecute
	// StageMemory: executing a load or store (AGU + cache access).
	StageMemory
	// StageComplete: result written back, waiting for in-order commit.
	StageComplete

	NumStages
)

var stageNames = [NumStages]string{"F", "Ds", "Ex", "Mm", "Cm"}

// Name returns the Kanata stage mnemonic.
func (s Stage) Name() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "S?"
}

// StallCause attributes a blocked cycle. The enum mirrors the stall
// counters of uarch.Stats one-for-one; the cores call Stall/StallN at
// exactly the sites that increment the corresponding counter, so the
// tracer totals reconcile exactly with the end-of-run statistics.
type StallCause uint8

const (
	// StallROBFull: dispatch blocked, reorder buffer full.
	StallROBFull StallCause = iota
	// StallIQFull: dispatch blocked, scheduler full.
	StallIQFull
	// StallLSQFull: dispatch blocked, load or store queue full.
	StallLSQFull
	// StallFreeList: dispatch blocked, no free physical register (SS only).
	StallFreeList
	// StallFrontEnd: nothing to dispatch (fetch latency, redirect, halt).
	StallFrontEnd
	// StallSPAddLimit: SPADD per-group rename limit hit (STRAIGHT only).
	StallSPAddLimit
	// StallRecovery: rename blocked by misprediction recovery
	// (SS: ROB walk; STRAIGHT: the single ROB-entry read).
	StallRecovery

	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	"rob-full", "iq-full", "lsq-full", "free-list",
	"front-end", "spadd-limit", "recovery",
}

// Name returns the stable label used in series JSON and reports.
func (c StallCause) Name() string {
	if int(c) < len(stallNames) {
		return stallNames[c]
	}
	return "stall?"
}

// StallCauseByName resolves a series-JSON key back to its cause.
func StallCauseByName(name string) (StallCause, bool) {
	for c := StallCause(0); c < NumStallCauses; c++ {
		if stallNames[c] == name {
			return c, true
		}
	}
	return 0, false
}

// Config parameterizes a Tracer.
type Config struct {
	// Window is the time-series sampling window in cycles (default 1000).
	Window int64
}

// liveInst is the tracer-side state of an in-flight instruction.
type liveInst struct {
	stage     Stage
	lastCause StallCause
	hasCause  bool
}

// Tracer records per-instruction pipeline events into a Kanata log and
// accumulates the cycle-sampled time series. All methods are safe on a
// nil *Tracer (they return immediately), which is the disabled fast
// path; the cores additionally guard call sites with a nil check so
// argument construction is skipped too.
//
// A Tracer is not safe for concurrent use: it belongs to exactly one
// core's simulation loop.
type Tracer struct {
	kw     *kanataWriter
	series *seriesBuilder

	live     map[ID]*liveInst
	regOwner map[int32]ID

	nextID    ID
	retireSeq uint64
	cycle     int64
}

// New builds a Tracer writing Kanata records to w.
func New(w io.Writer, cfg Config) *Tracer {
	if cfg.Window <= 0 {
		cfg.Window = 1000
	}
	return &Tracer{
		kw:       newKanataWriter(w),
		series:   newSeriesBuilder(cfg.Window),
		live:     make(map[ID]*liveInst),
		regOwner: make(map[int32]ID),
	}
}

// BeginCycle advances the tracer clock; the cores call it once at the
// top of every simulated cycle.
func (t *Tracer) BeginCycle(cycle int64) {
	if t == nil {
		return
	}
	t.cycle = cycle
	t.kw.setCycle(cycle)
	t.series.tick(cycle)
}

// Fetch declares a new dynamic instruction entering the pipeline and
// returns its trace ID.
func (t *Tracer) Fetch(pc uint32, disasm string) ID {
	if t == nil {
		return 0
	}
	t.nextID++
	id := t.nextID
	t.live[id] = &liveInst{stage: StageFetch}
	t.kw.inst(id)
	t.kw.label(id, 0, fmt.Sprintf("%08x: %s", pc, disasm))
	t.kw.stageStart(id, StageFetch)
	t.series.fetched++
	return id
}

// Dispatch moves id into the ROB/scheduler and records dependence edges
// from the physical source registers (pass -1 for an absent operand).
// The destination register makes id the producer subsequent consumers
// wake on.
func (t *Tracer) Dispatch(id ID, dest, src1, src2 int32) {
	if t == nil {
		return
	}
	li, ok := t.live[id]
	if !ok {
		return
	}
	t.kw.stageEnd(id, li.stage)
	li.stage = StageDispatch
	t.kw.stageStart(id, StageDispatch)
	for _, src := range [2]int32{src1, src2} {
		if src < 0 {
			continue
		}
		if prod, ok := t.regOwner[src]; ok && prod != id {
			t.kw.dep(id, prod)
		}
	}
	if dest >= 0 {
		t.regOwner[dest] = id
	}
}

// Issue moves id from the scheduler into a functional unit; mem selects
// the memory lane (loads and stores).
func (t *Tracer) Issue(id ID, mem bool) {
	if t == nil {
		return
	}
	li, ok := t.live[id]
	if !ok {
		return
	}
	t.kw.stageEnd(id, li.stage)
	li.stage = StageExecute
	if mem {
		li.stage = StageMemory
	}
	t.kw.stageStart(id, li.stage)
}

// Writeback marks id's result as produced; it now waits to commit.
func (t *Tracer) Writeback(id ID) {
	if t == nil {
		return
	}
	li, ok := t.live[id]
	if !ok {
		return
	}
	t.kw.stageEnd(id, li.stage)
	li.stage = StageComplete
	t.kw.stageStart(id, StageComplete)
}

// Commit retires id in order.
func (t *Tracer) Commit(id ID) {
	if t == nil {
		return
	}
	li, ok := t.live[id]
	if !ok {
		return
	}
	t.kw.stageEnd(id, li.stage)
	t.retireSeq++
	t.kw.retire(id, t.retireSeq, false)
	delete(t.live, id)
	t.series.addRetired()
}

// Squash discards id (wrong path or memory-order violation). It is
// idempotent: the cores mark the same µop squashed in several
// structures, and only the first call emits records.
func (t *Tracer) Squash(id ID) {
	if t == nil || id == 0 {
		return
	}
	li, ok := t.live[id]
	if !ok {
		return
	}
	t.kw.stageEnd(id, li.stage)
	t.kw.retire(id, 0, true)
	delete(t.live, id)
	t.series.squashed++
}

// Stall attributes one blocked cycle to cause. When id names the
// instruction at the head of the blocked queue, the cause is attached to
// it as a hover label (once per cause change, to bound trace size).
func (t *Tracer) Stall(cause StallCause, id ID) {
	if t == nil {
		return
	}
	t.series.stall(cause, 1)
	if id == 0 {
		return
	}
	li, ok := t.live[id]
	if !ok {
		return
	}
	if li.hasCause && li.lastCause == cause {
		return
	}
	li.lastCause, li.hasCause = cause, true
	t.kw.label(id, 1, fmt.Sprintf("stall %s @%d", cause.Name(), t.cycle))
}

// StallN attributes n blocked cycles at once (the SS core charges the
// whole ROB-walk duration when the walk length is known).
func (t *Tracer) StallN(cause StallCause, n int64) {
	if t == nil || n <= 0 {
		return
	}
	t.series.stall(cause, n)
}

// Sample records end-of-cycle structure occupancies for the time series.
func (t *Tracer) Sample(rob, iq, lq, sq int) {
	if t == nil {
		return
	}
	t.series.sample(rob, iq, lq, sq)
}

// Close flushes the Kanata stream, discarding still-in-flight
// instructions as flushed (a bounded run ends mid-pipeline). The
// underlying writer is not closed. Close must be called exactly once;
// the Tracer is unusable afterwards.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	for id := ID(1); id <= t.nextID; id++ {
		if li, ok := t.live[id]; ok {
			t.kw.stageEnd(id, li.stage)
			t.kw.retire(id, 0, true)
			delete(t.live, id)
		}
	}
	return t.kw.flush()
}

// Series finalizes and returns the accumulated time series. Call after
// Close (or at least after the final BeginCycle).
func (t *Tracer) Series() *Series {
	if t == nil {
		return nil
	}
	return t.series.build()
}

// Err reports the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.kw.err
}
