.PHONY: build test verify experiments

build:
	go build ./...

test:
	go test ./...

# Full tier-1 verification: build + vet + tests + race-checked bench.
verify:
	sh scripts/verify.sh

# Reproduce every paper figure at the default scale, in parallel.
experiments:
	go run ./cmd/experiments -j 0
