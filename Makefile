.PHONY: build test verify staticcheck fuzz fuzz-diff experiments bench bench-update

build:
	go build ./...

test:
	go test ./...

# Full tier-1 verification: build + vet (+ staticcheck when installed) +
# tests + race-checked bench.
verify:
	sh scripts/verify.sh

# Run staticcheck alone (version-pinned in CI; skipped by verify.sh with
# a warning when not installed).
staticcheck:
	staticcheck ./...

# Short fuzzing pass over the instruction decoder, the assembler, and
# the differential lockstep harness.
fuzz:
	go test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/isa/straight
	go test -run=NONE -fuzz=FuzzAssemble -fuzztime=30s ./internal/sasm
	go test -run=NONE -fuzz=FuzzLockstep -fuzztime=10s ./internal/fuzzgen

# Randomized differential co-simulation sweep (see DESIGN.md §10).
fuzz-diff:
	go run ./cmd/straight-fuzz -seeds 500

# Reproduce every paper figure at the default scale, in parallel.
experiments:
	go run ./cmd/experiments -j 0

# Simulation-kernel throughput: alloc budget + KIPS benchmarks + the
# regression check against BENCH_simkernel.json in both stepping modes
# (see DESIGN.md §11-12).
bench:
	sh scripts/bench.sh

# Re-record the KIPS baseline (new reference host or intentional change).
bench-update:
	sh scripts/bench.sh update
