.PHONY: build test verify lint staticcheck fuzz fuzz-diff experiments bench bench-update

build:
	go build ./...

test:
	go test ./...

# Full tier-1 verification: build + vet + project analyzers
# (+ staticcheck when reachable) + tests + race-checked bench.
verify:
	sh scripts/verify.sh

# Project analyzers (DESIGN.md §13): resetcomplete, hotpathalloc,
# statscoverage, tracerguard via the vet -vettool protocol.
lint:
	go build -o bin/straight-lint ./cmd/straight-lint
	go vet -vettool=bin/straight-lint ./...

# Run staticcheck alone, at the version pinned in
# scripts/staticcheck-version (the one tracked pin; verify.sh and CI
# read the same file).
staticcheck:
	go run "honnef.co/go/tools/cmd/staticcheck@$$(cat scripts/staticcheck-version)" ./...

# Short fuzzing pass over the instruction decoder, the assembler, and
# the differential lockstep harness.
fuzz:
	go test -run=NONE -fuzz=FuzzDecode -fuzztime=30s ./internal/isa/straight
	go test -run=NONE -fuzz=FuzzAssemble -fuzztime=30s ./internal/sasm
	go test -run=NONE -fuzz=FuzzLockstep -fuzztime=10s ./internal/fuzzgen

# Randomized differential co-simulation sweep (see DESIGN.md §10).
fuzz-diff:
	go run ./cmd/straight-fuzz -seeds 500

# Reproduce every paper figure at the default scale, in parallel.
experiments:
	go run ./cmd/experiments -j 0

# Simulation-kernel throughput: alloc budget + KIPS benchmarks + the
# regression check against BENCH_simkernel.json in both stepping modes
# (see DESIGN.md §11-12).
bench:
	sh scripts/bench.sh

# Re-record the KIPS baseline (new reference host or intentional change).
bench-update:
	sh scripts/bench.sh update
